"""Expression AST, compiler, and builtin functions.

Expressions appear in WHERE/HAVING clauses, select lists, CHECK and label
constraints, and view definitions.  The AST is built either by the SQL
parser (:mod:`repro.sql.parser`) or programmatically.

Compilation turns an AST into a Python closure ``fn(row, ctx) -> value``
against a :class:`Scope` that maps column references to positions in the
flattened execution row.  This keeps the per-row cost low enough for the
TPC-C benchmark while staying an ordinary tree-walking design.

SQL three-valued logic is approximated with ``None`` as UNKNOWN:
comparisons involving NULL yield None, ``AND``/``OR`` propagate it, and
filters treat None as false.

The ``_label`` system column (section 4.2) is exposed to expressions like
any other column; label predicates use the builtins ``LABEL(...)``,
``LABEL_CONTAINS``, ``LABEL_SUBSET`` and friends, which consult the tag
registry through the execution context.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.labels import Label
from ..errors import CatalogError, DatabaseError, SQLSyntaxError

# ---------------------------------------------------------------------------
# AST nodes
# ---------------------------------------------------------------------------

class Expr:
    """Base class for expression nodes.

    Nodes compare equal structurally (via :meth:`key`), which the planner
    uses to match GROUP BY expressions against select-list expressions.
    """

    __slots__ = ()

    def key(self) -> Tuple:
        raise NotImplementedError

    def __eq__(self, other):
        return isinstance(other, Expr) and self.key() == other.key()

    def __hash__(self):
        return hash(self.key())

    def __repr__(self):
        return "%s%r" % (type(self).__name__, self.key()[1:])


class Literal(Expr):
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def key(self):
        return ("lit", self.value)


class Param(Expr):
    """A ``?`` placeholder, bound positionally at execution time."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def key(self):
        return ("param", self.index)


class ColumnRef(Expr):
    __slots__ = ("table", "name")

    def __init__(self, name: str, table: Optional[str] = None):
        self.table = table
        self.name = name

    def key(self):
        return ("col", self.table, self.name)


class Star(Expr):
    """``*`` or ``alias.*`` in a select list."""

    __slots__ = ("table",)

    def __init__(self, table: Optional[str] = None):
        self.table = table

    def key(self):
        return ("star", self.table)


class BinOp(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        self.op = op
        self.left = left
        self.right = right

    def key(self):
        return ("bin", self.op, self.left.key(), self.right.key())


class Compare(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        self.op = op
        self.left = left
        self.right = right

    def key(self):
        return ("cmp", self.op, self.left.key(), self.right.key())


class And(Expr):
    __slots__ = ("items",)

    def __init__(self, items: Sequence[Expr]):
        self.items = tuple(items)

    def key(self):
        return ("and",) + tuple(i.key() for i in self.items)


class Or(Expr):
    __slots__ = ("items",)

    def __init__(self, items: Sequence[Expr]):
        self.items = tuple(items)

    def key(self):
        return ("or",) + tuple(i.key() for i in self.items)


class Not(Expr):
    __slots__ = ("operand",)

    def __init__(self, operand: Expr):
        self.operand = operand

    def key(self):
        return ("not", self.operand.key())


class Neg(Expr):
    __slots__ = ("operand",)

    def __init__(self, operand: Expr):
        self.operand = operand

    def key(self):
        return ("neg", self.operand.key())


class IsNull(Expr):
    __slots__ = ("operand", "negated")

    def __init__(self, operand: Expr, negated: bool = False):
        self.operand = operand
        self.negated = negated

    def key(self):
        return ("isnull", self.operand.key(), self.negated)


class InList(Expr):
    __slots__ = ("operand", "items", "negated")

    def __init__(self, operand: Expr, items: Sequence[Expr],
                 negated: bool = False):
        self.operand = operand
        self.items = tuple(items)
        self.negated = negated

    def key(self):
        return (("in", self.operand.key(), self.negated)
                + tuple(i.key() for i in self.items))


class Between(Expr):
    __slots__ = ("operand", "low", "high", "negated")

    def __init__(self, operand: Expr, low: Expr, high: Expr,
                 negated: bool = False):
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated

    def key(self):
        return ("between", self.operand.key(), self.low.key(),
                self.high.key(), self.negated)


class Like(Expr):
    __slots__ = ("operand", "pattern", "negated")

    def __init__(self, operand: Expr, pattern: Expr, negated: bool = False):
        self.operand = operand
        self.pattern = pattern
        self.negated = negated

    def key(self):
        return ("like", self.operand.key(), self.pattern.key(), self.negated)


class FuncCall(Expr):
    """Builtin or catalog-registered scalar function call."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expr]):
        self.name = name.upper()
        self.args = tuple(args)

    def key(self):
        return ("func", self.name) + tuple(a.key() for a in self.args)


class Aggregate(Expr):
    """COUNT/SUM/AVG/MIN/MAX, resolved by the aggregation operator."""

    FUNCS = ("COUNT", "SUM", "AVG", "MIN", "MAX")

    __slots__ = ("func", "arg", "distinct")

    def __init__(self, func: str, arg: Optional[Expr], distinct: bool = False):
        self.func = func.upper()
        self.arg = arg          # None means COUNT(*)
        self.distinct = distinct

    def key(self):
        return ("agg", self.func,
                self.arg.key() if self.arg is not None else None,
                self.distinct)


class Case(Expr):
    __slots__ = ("whens", "default")

    def __init__(self, whens: Sequence[Tuple[Expr, Expr]],
                 default: Optional[Expr] = None):
        self.whens = tuple(whens)
        self.default = default

    def key(self):
        return (("case",)
                + tuple((c.key(), v.key()) for c, v in self.whens)
                + (self.default.key() if self.default else None,))


class Exists(Expr):
    """EXISTS (subquery); the subquery is a parsed Select statement."""

    __slots__ = ("select", "negated")

    def __init__(self, select, negated: bool = False):
        self.select = select
        self.negated = negated

    def key(self):
        return ("exists", id(self.select), self.negated)


class InSelect(Expr):
    """operand IN (subquery)."""

    __slots__ = ("operand", "select", "negated")

    def __init__(self, operand: Expr, select, negated: bool = False):
        self.operand = operand
        self.select = select
        self.negated = negated

    def key(self):
        return ("insel", self.operand.key(), id(self.select), self.negated)


class ScalarSelect(Expr):
    """A subquery used as a scalar value."""

    __slots__ = ("select",)

    def __init__(self, select):
        self.select = select

    def key(self):
        return ("scalarsel", id(self.select))


class AggSlotRef(Expr):
    """Internal: reference to an aggregate result slot (planner rewrite)."""

    __slots__ = ("slot",)

    def __init__(self, slot: int):
        self.slot = slot

    def key(self):
        return ("aggslot", self.slot)


class SlotRef(Expr):
    """Internal: direct reference to a position in the execution row."""

    __slots__ = ("slot",)

    def __init__(self, slot: int):
        self.slot = slot

    def key(self):
        return ("slot", self.slot)


# ---------------------------------------------------------------------------
# Scope: name resolution for column references
# ---------------------------------------------------------------------------

class Scope:
    """Maps (table alias, column name) to flat row positions.

    Each FROM item contributes its columns in order, then a ``_label``
    pseudo-column holding that item's per-row label.  An optional
    ``outer`` scope supports correlated subqueries: references that fail
    to resolve locally are looked up in the enclosing query's scope and
    read from ``ctx.outer_stack`` at execution time.
    """

    def __init__(self, outer: Optional["Scope"] = None):
        self.entries: List[Tuple[Optional[str], str]] = []
        self._by_name: Dict[str, List[int]] = {}
        self._by_qualified: Dict[Tuple[str, str], int] = {}
        self.tables: List[Tuple[str, List[str]]] = []   # (alias, colnames)
        self.outer = outer

    def add_table(self, alias: str, columns: Sequence[str]) -> None:
        base = len(self.entries)
        names = list(columns) + ["_label"]
        for offset, name in enumerate(names):
            index = base + offset
            self.entries.append((alias, name))
            self._by_name.setdefault(name, []).append(index)
            self._by_qualified[(alias, name)] = index
        self.tables.append((alias, list(columns)))

    @property
    def width(self) -> int:
        return len(self.entries)

    def resolve(self, name: str, table: Optional[str] = None) -> int:
        if table is not None:
            try:
                return self._by_qualified[(table, name)]
            except KeyError:
                raise CatalogError(
                    "column %s.%s does not exist" % (table, name)) from None
        candidates = self._by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        if not candidates:
            raise CatalogError("column %r does not exist" % name)
        if name == "_label" and len(self.tables) >= 1:
            # Unqualified _label in a single-table query is unambiguous;
            # with joins, require qualification.
            if len(self.tables) == 1:
                return candidates[0]
        raise CatalogError("column reference %r is ambiguous" % name)

    def resolve_depth(self, name: str,
                      table: Optional[str]) -> Tuple[int, int]:
        """Resolve through the outer-scope chain: (depth, index).

        Depth 0 is the local row; depth ``d`` reads from the ``d``-th
        enclosing query's current row.
        """
        scope: Optional[Scope] = self
        depth = 0
        while scope is not None:
            try:
                return depth, scope.resolve(name, table)
            except CatalogError:
                scope = scope.outer
                depth += 1
        raise CatalogError("column %r does not exist in any enclosing scope"
                           % name)

    def star_positions(self, table: Optional[str] = None) -> List[int]:
        """Positions expanded by ``*`` / ``alias.*`` (labels excluded)."""
        positions = []
        for index, (alias, name) in enumerate(self.entries):
            if name == "_label":
                continue
            if table is None or alias == table:
                positions.append(index)
        if table is not None and not positions:
            raise CatalogError("no FROM item named %r" % table)
        return positions

    def star_names(self, table: Optional[str] = None) -> List[str]:
        return [self.entries[i][1] for i in self.star_positions(table)]


# ---------------------------------------------------------------------------
# Builtin scalar functions
# ---------------------------------------------------------------------------

def _null_guard(fn):
    """Wrap a builtin so any NULL argument yields NULL (SQL convention)."""
    def guarded(*args):
        if any(a is None for a in args):
            return None
        return fn(*args)
    return guarded


def _substr(s, start, length=None):
    start = int(start) - 1          # SQL is 1-based
    if length is None:
        return s[start:]
    return s[start:start + int(length)]


_BUILTINS: Dict[str, Callable] = {
    "ABS": _null_guard(abs),
    "LENGTH": _null_guard(len),
    "LOWER": _null_guard(str.lower),
    "UPPER": _null_guard(str.upper),
    "SUBSTR": _null_guard(_substr),
    "SUBSTRING": _null_guard(_substr),
    "ROUND": _null_guard(lambda x, n=0: round(x, int(n))),
    "FLOOR": _null_guard(lambda x: float(int(x // 1))),
    "CEIL": _null_guard(lambda x: float(-((-x) // 1))),
    "MOD": _null_guard(lambda a, b: a % b),
    "TRIM": _null_guard(str.strip),
    "CONCAT": lambda *args: "".join(str(a) for a in args if a is not None),
    "MIN2": _null_guard(min),
    "MAX2": _null_guard(max),
}


def like_match(value: Optional[str], pattern: Optional[str]) -> Optional[bool]:
    """SQL LIKE: ``%`` matches any run, ``_`` any single character."""
    if value is None or pattern is None:
        return None
    import re
    # re.escape leaves % and _ alone on modern Pythons; normalize both
    # possibilities before substituting the wildcards.
    regex = (re.escape(pattern)
             .replace(r"\%", "%").replace(r"\_", "_")
             .replace("%", ".*").replace("_", "."))
    return re.fullmatch(regex, value, re.DOTALL) is not None


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------

_CMP_FUNCS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_BIN_FUNCS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
    "||": lambda a, b: str(a) + str(b),
}


class ExprCompiler:
    """Compiles expression ASTs to closures against a scope.

    ``catalog`` (optional) resolves user-defined scalar functions;
    ``planner`` (optional) plans subquery expressions.  Both are injected
    by the query planner to avoid circular imports.
    """

    def __init__(self, scope: Scope, catalog=None, planner=None):
        self.scope = scope
        self.catalog = catalog
        self.planner = planner

    def compile(self, node: Expr) -> Callable:
        method = getattr(self, "_c_" + type(node).__name__.lower(), None)
        if method is None:
            raise DatabaseError("cannot compile expression %r" % (node,))
        return method(node)

    # -- leaves ----------------------------------------------------------
    def _c_literal(self, node: Literal):
        value = node.value
        return lambda row, ctx: value

    def _c_param(self, node: Param):
        index = node.index
        def run(row, ctx):
            try:
                return ctx.params[index]
            except IndexError:
                raise DatabaseError(
                    "statement requires at least %d parameters, got %d"
                    % (index + 1, len(ctx.params))) from None
        return run

    def _c_columnref(self, node: ColumnRef):
        depth, index = self.scope.resolve_depth(node.name, node.table)
        if depth == 0:
            return lambda row, ctx: row[index]
        def run(row, ctx):
            return ctx.outer_stack[-depth][index]
        return run

    def _c_slotref(self, node: SlotRef):
        index = node.slot
        return lambda row, ctx: row[index]

    def _c_aggslotref(self, node: AggSlotRef):
        index = node.slot
        return lambda row, ctx: row[index]

    # -- operators ---------------------------------------------------------
    def _c_binop(self, node: BinOp):
        fn = _BIN_FUNCS[node.op]
        left = self.compile(node.left)
        right = self.compile(node.right)
        def run(row, ctx):
            lv = left(row, ctx)
            rv = right(row, ctx)
            if lv is None or rv is None:
                return None
            return fn(lv, rv)
        return run

    def _c_compare(self, node: Compare):
        fn = _CMP_FUNCS[node.op]
        left = self.compile(node.left)
        right = self.compile(node.right)
        def run(row, ctx):
            lv = left(row, ctx)
            rv = right(row, ctx)
            if lv is None or rv is None:
                return None
            return fn(lv, rv)
        return run

    def _c_and(self, node: And):
        parts = [self.compile(i) for i in node.items]
        def run(row, ctx):
            saw_null = False
            for part in parts:
                value = part(row, ctx)
                if value is None:
                    saw_null = True
                elif not value:
                    return False
            return None if saw_null else True
        return run

    def _c_or(self, node: Or):
        parts = [self.compile(i) for i in node.items]
        def run(row, ctx):
            saw_null = False
            for part in parts:
                value = part(row, ctx)
                if value is None:
                    saw_null = True
                elif value:
                    return True
            return None if saw_null else False
        return run

    def _c_not(self, node: Not):
        operand = self.compile(node.operand)
        def run(row, ctx):
            value = operand(row, ctx)
            if value is None:
                return None
            return not value
        return run

    def _c_neg(self, node: Neg):
        operand = self.compile(node.operand)
        def run(row, ctx):
            value = operand(row, ctx)
            return None if value is None else -value
        return run

    def _c_isnull(self, node: IsNull):
        operand = self.compile(node.operand)
        if node.negated:
            return lambda row, ctx: operand(row, ctx) is not None
        return lambda row, ctx: operand(row, ctx) is None

    def _c_inlist(self, node: InList):
        operand = self.compile(node.operand)
        items = [self.compile(i) for i in node.items]
        negated = node.negated
        def run(row, ctx):
            value = operand(row, ctx)
            if value is None:
                return None
            found = False
            saw_null = False
            for item in items:
                iv = item(row, ctx)
                if iv is None:
                    saw_null = True
                elif iv == value:
                    found = True
                    break
            if not found and saw_null:
                return None
            return (not found) if negated else found
        return run

    def _c_between(self, node: Between):
        operand = self.compile(node.operand)
        low = self.compile(node.low)
        high = self.compile(node.high)
        negated = node.negated
        def run(row, ctx):
            value = operand(row, ctx)
            lo = low(row, ctx)
            hi = high(row, ctx)
            if value is None or lo is None or hi is None:
                return None
            result = lo <= value <= hi
            return (not result) if negated else result
        return run

    def _c_like(self, node: Like):
        operand = self.compile(node.operand)
        pattern = self.compile(node.pattern)
        negated = node.negated
        def run(row, ctx):
            result = like_match(operand(row, ctx), pattern(row, ctx))
            if result is None:
                return None
            return (not result) if negated else result
        return run

    def _c_case(self, node: Case):
        whens = [(self.compile(c), self.compile(v)) for c, v in node.whens]
        default = self.compile(node.default) if node.default else None
        def run(row, ctx):
            for cond, value in whens:
                if cond(row, ctx):
                    return value(row, ctx)
            return default(row, ctx) if default else None
        return run

    # -- functions ---------------------------------------------------------
    def _c_funccall(self, node: FuncCall):
        args = [self.compile(a) for a in node.args]
        name = node.name
        # Label builtins need the execution context (tag registry).
        if name == "LABEL":
            def make_label(row, ctx):
                names = [a(row, ctx) for a in args]
                return Label(ctx.registry.lookup(n).id for n in names)
            return make_label
        if name == "LABEL_CONTAINS":
            def contains(row, ctx):
                label, tag_name = args[0](row, ctx), args[1](row, ctx)
                if label is None:
                    return None
                return ctx.registry.lookup(tag_name).id in label
            return contains
        if name == "LABEL_SUBSET":
            def subset(row, ctx):
                low, high = args[0](row, ctx), args[1](row, ctx)
                if low is None or high is None:
                    return None
                return low.tags <= ctx.registry.expand(high.tags)
            return subset
        if name == "LABEL_SIZE":
            def size(row, ctx):
                label = args[0](row, ctx)
                return None if label is None else len(label)
            return size
        if name == "COALESCE":
            def coalesce(row, ctx):
                for arg in args:
                    value = arg(row, ctx)
                    if value is not None:
                        return value
                return None
            return coalesce
        if name == "NOW":
            return lambda row, ctx: ctx.now()
        if name in _BUILTINS:
            fn = _BUILTINS[name]
            return lambda row, ctx: fn(*(a(row, ctx) for a in args))
        # User-defined scalar function from the catalog.
        if self.catalog is not None and self.catalog.has_function(node.name):
            udf = self.catalog.get_function(node.name)
            if udf.needs_context:
                return lambda row, ctx: udf.fn(ctx,
                                               *(a(row, ctx) for a in args))
            inner = udf.fn
            return lambda row, ctx: inner(*(a(row, ctx) for a in args))
        raise CatalogError("unknown function %r" % node.name)

    # -- subqueries ----------------------------------------------------------
    def _plan_subquery(self, select, *, scalar: bool):
        if self.planner is None:
            raise DatabaseError("subqueries are not supported here")
        # Row-at-a-time on purpose: EXISTS/IN/scalar consumers pull one
        # or two rows and stop; a batched subplan would materialize a
        # whole RowBatch per probe (see Planner.plan_select).
        prepared = self.planner.plan_select(select, outer_scope=self.scope,
                                            batched=False)
        return prepared.plan

    def _c_exists(self, node: Exists):
        plan = self._plan_subquery(node.select, scalar=False)
        negated = node.negated
        def run(row, ctx):
            ctx.outer_stack.append(row)
            try:
                for _ in plan.rows(ctx):
                    return not negated
                return negated
            finally:
                ctx.outer_stack.pop()
        return run

    def _c_inselect(self, node: InSelect):
        plan = self._plan_subquery(node.select, scalar=False)
        operand = self.compile(node.operand)
        negated = node.negated
        def run(row, ctx):
            value = operand(row, ctx)
            if value is None:
                return None
            ctx.outer_stack.append(row)
            try:
                saw_null = False
                for sub_values, _label, _ilabel in plan.rows(ctx):
                    candidate = sub_values[0]
                    if candidate is None:
                        saw_null = True
                    elif candidate == value:
                        return not negated
                if saw_null:
                    return None
                return negated
            finally:
                ctx.outer_stack.pop()
        return run

    def _c_scalarselect(self, node: ScalarSelect):
        plan = self._plan_subquery(node.select, scalar=True)
        def run(row, ctx):
            ctx.outer_stack.append(row)
            try:
                result = None
                count = 0
                for sub_values, _label, _ilabel in plan.rows(ctx):
                    count += 1
                    if count > 1:
                        raise DatabaseError(
                            "scalar subquery returned more than one row")
                    result = sub_values[0]
                return result
            finally:
                ctx.outer_stack.pop()
        return run


def to_sql(node: Expr) -> str:
    """Render an expression AST as SQL-ish text (EXPLAIN output).

    The rendering is for humans: parameters print as ``?``, subqueries
    collapse to ``(subquery)``, and internal slot references print as
    ``#n`` (their position in the execution row).
    """
    if isinstance(node, Literal):
        if node.value is None:
            return "NULL"
        if isinstance(node.value, str):
            return "'%s'" % node.value.replace("'", "''")
        return str(node.value)
    if isinstance(node, Param):
        return "?"
    if isinstance(node, ColumnRef):
        return "%s.%s" % (node.table, node.name) if node.table else node.name
    if isinstance(node, Star):
        return "%s.*" % node.table if node.table else "*"
    if isinstance(node, (SlotRef, AggSlotRef)):
        return "#%d" % node.slot
    if isinstance(node, (BinOp, Compare)):
        return "%s %s %s" % (to_sql(node.left), node.op, to_sql(node.right))
    if isinstance(node, And):
        return " AND ".join("(%s)" % to_sql(i) if isinstance(i, Or)
                            else to_sql(i) for i in node.items)
    if isinstance(node, Or):
        return " OR ".join(to_sql(i) for i in node.items)
    if isinstance(node, Not):
        return "NOT (%s)" % to_sql(node.operand)
    if isinstance(node, Neg):
        return "-%s" % to_sql(node.operand)
    if isinstance(node, IsNull):
        return "%s IS %sNULL" % (to_sql(node.operand),
                                 "NOT " if node.negated else "")
    if isinstance(node, InList):
        return "%s %sIN (%s)" % (to_sql(node.operand),
                                 "NOT " if node.negated else "",
                                 ", ".join(to_sql(i) for i in node.items))
    if isinstance(node, Between):
        return "%s %sBETWEEN %s AND %s" % (
            to_sql(node.operand), "NOT " if node.negated else "",
            to_sql(node.low), to_sql(node.high))
    if isinstance(node, Like):
        return "%s %sLIKE %s" % (to_sql(node.operand),
                                 "NOT " if node.negated else "",
                                 to_sql(node.pattern))
    if isinstance(node, FuncCall):
        return "%s(%s)" % (node.name,
                           ", ".join(to_sql(a) for a in node.args))
    if isinstance(node, Aggregate):
        arg = "*" if node.arg is None else to_sql(node.arg)
        return "%s(%s%s)" % (node.func,
                             "DISTINCT " if node.distinct else "", arg)
    if isinstance(node, Case):
        parts = ["CASE"]
        for cond, value in node.whens:
            parts.append("WHEN %s THEN %s" % (to_sql(cond), to_sql(value)))
        if node.default is not None:
            parts.append("ELSE %s" % to_sql(node.default))
        parts.append("END")
        return " ".join(parts)
    if isinstance(node, Exists):
        return "%sEXISTS (subquery)" % ("NOT " if node.negated else "")
    if isinstance(node, InSelect):
        return "%s %sIN (subquery)" % (to_sql(node.operand),
                                       "NOT " if node.negated else "")
    if isinstance(node, ScalarSelect):
        return "(subquery)"
    return repr(node)


def contains_aggregate(node: Expr) -> bool:
    """True if the expression tree contains an Aggregate node."""
    if isinstance(node, Aggregate):
        return True
    for attr in getattr(node, "__slots__", ()):
        child = getattr(node, attr)
        if isinstance(child, Expr):
            if contains_aggregate(child):
                return True
        elif isinstance(child, tuple):
            for item in child:
                if isinstance(item, Expr) and contains_aggregate(item):
                    return True
                if (isinstance(item, tuple) and len(item) == 2
                        and all(isinstance(x, Expr) for x in item)):
                    if any(contains_aggregate(x) for x in item):
                        return True
    return False


def collect_aggregates(node: Expr, out: List[Aggregate]) -> None:
    """Collect Aggregate nodes (deduplicated structurally) into ``out``."""
    if isinstance(node, Aggregate):
        if node not in out:
            out.append(node)
        return
    for attr in getattr(node, "__slots__", ()):
        child = getattr(node, attr)
        if isinstance(child, Expr):
            collect_aggregates(child, out)
        elif isinstance(child, tuple):
            for item in child:
                if isinstance(item, Expr):
                    collect_aggregates(item, out)
                elif (isinstance(item, tuple) and len(item) == 2):
                    for x in item:
                        if isinstance(x, Expr):
                            collect_aggregates(x, out)


def reads_columns_only(node: Expr) -> bool:
    """True when the expression can be evaluated against a bare tuple.

    A scan's predicate row is ``list(version.values) + [label]`` — the
    base columns plus the ``_label`` pseudo-column appended at the end.
    When the predicate references only real columns (positions are
    identical with or without the appended label), the executor can run
    it directly on ``version.values`` and skip the per-tuple list copy
    for rows the predicate rejects.  Conservative: any ``_label``
    reference, ``*``, or subquery (whose correlated references receive
    the row via ``ctx.outer_stack`` and could reach the label slot)
    disqualifies the expression.
    """
    if isinstance(node, (Exists, InSelect, ScalarSelect, Star)):
        return False
    if isinstance(node, ColumnRef):
        return node.name != "_label"
    for attr in getattr(node, "__slots__", ()):
        child = getattr(node, attr)
        if isinstance(child, Expr):
            if not reads_columns_only(child):
                return False
        elif isinstance(child, tuple):
            for item in child:
                if isinstance(item, Expr):
                    if not reads_columns_only(item):
                        return False
                elif isinstance(item, tuple):
                    for x in item:
                        if isinstance(x, Expr) and \
                                not reads_columns_only(x):
                            return False
    return True


# ---------------------------------------------------------------------------
# Batch compilation (vectorized executor)
# ---------------------------------------------------------------------------

def compile_batch(compiler: "ExprCompiler", node: Expr) -> Callable:
    """Compile ``node`` to a *batch* closure ``fn(batch, ctx) -> list``.

    The returned function evaluates the expression for every row of a
    :class:`~repro.db.physical.RowBatch` at once, returning one value
    per row.  The kernels are **column-at-a-time**: leaves pull whole
    column arrays (``batch.column(i)`` — zero-copy on a columnar batch
    with no selection) and the common predicate shapes (comparisons,
    ``AND``, ``IS NULL``) combine those arrays element-wise, so a
    predicate only ever touches the columns it reads.  Everything else
    falls back to mapping the ordinary row closure from
    :meth:`ExprCompiler.compile` over ``batch.values`` (widening the
    batch), so batch compilation can never change semantics — only the
    loop shape.

    ``AND`` keeps the row compiler's short-circuit contract via a
    selection mask: later conjuncts are evaluated only for rows still
    alive (not yet FALSE) by selecting the alive sub-batch — columnar
    batches compose the selection vector without copying column data —
    so an expression like ``x <> 0 AND 10 / x > 2`` raises for exactly
    the rows the row-at-a-time executor would have raised for.
    """
    if isinstance(node, Literal):
        value = node.value
        return lambda batch, ctx: [value] * len(batch)
    if isinstance(node, Param):
        row_fn = compiler.compile(node)
        return lambda batch, ctx: [row_fn([], ctx)] * len(batch)
    if isinstance(node, ColumnRef):
        depth, index = compiler.scope.resolve_depth(node.name, node.table)
        if depth == 0:
            return lambda batch, ctx: batch.column(index)
        def outer(batch, ctx, depth=depth, index=index):
            return [ctx.outer_stack[-depth][index]] * len(batch)
        return outer
    if isinstance(node, (SlotRef, AggSlotRef)):
        index = node.slot
        return lambda batch, ctx: batch.column(index)
    if isinstance(node, IsNull):
        operand = compile_batch(compiler, node.operand)
        if node.negated:
            return lambda batch, ctx: [v is not None
                                       for v in operand(batch, ctx)]
        return lambda batch, ctx: [v is None for v in operand(batch, ctx)]
    if isinstance(node, Compare):
        fn = _CMP_FUNCS[node.op]
        left = compile_batch(compiler, node.left)
        right = compile_batch(compiler, node.right)
        def compare(batch, ctx):
            return [None if lv is None or rv is None else fn(lv, rv)
                    for lv, rv in zip(left(batch, ctx), right(batch, ctx))]
        return compare
    if isinstance(node, And):
        parts = [compile_batch(compiler, item) for item in node.items]
        def conjunction(batch, ctx):
            n = len(batch)
            result: list = [True] * n
            alive = list(range(n))
            for part in parts:
                if not alive:
                    break
                sub = batch if len(alive) == n else batch.select(alive)
                vals = part(sub, ctx)
                survivors = []
                for j, i in enumerate(alive):
                    value = vals[j]
                    if value is None:
                        result[i] = None
                        survivors.append(i)    # a later FALSE still wins
                    elif not value:
                        result[i] = False
                    else:
                        survivors.append(i)
                alive = survivors
            return result
        return conjunction
    row_fn = compiler.compile(node)
    return lambda batch, ctx: [row_fn(row, ctx) for row in batch.values]


def rewrite(node: Expr, mapping: Dict[Expr, Expr]) -> Expr:
    """Structurally replace subtrees of ``node`` per ``mapping``.

    Used by the planner to replace aggregate calls and group-by
    expressions with slot references into the post-aggregation row.
    """
    if node in mapping:
        return mapping[node]
    if isinstance(node, (Literal, Param, ColumnRef, Star, SlotRef,
                         AggSlotRef)):
        return node
    if isinstance(node, BinOp):
        return BinOp(node.op, rewrite(node.left, mapping),
                     rewrite(node.right, mapping))
    if isinstance(node, Compare):
        return Compare(node.op, rewrite(node.left, mapping),
                       rewrite(node.right, mapping))
    if isinstance(node, And):
        return And([rewrite(i, mapping) for i in node.items])
    if isinstance(node, Or):
        return Or([rewrite(i, mapping) for i in node.items])
    if isinstance(node, Not):
        return Not(rewrite(node.operand, mapping))
    if isinstance(node, Neg):
        return Neg(rewrite(node.operand, mapping))
    if isinstance(node, IsNull):
        return IsNull(rewrite(node.operand, mapping), node.negated)
    if isinstance(node, InList):
        return InList(rewrite(node.operand, mapping),
                      [rewrite(i, mapping) for i in node.items], node.negated)
    if isinstance(node, Between):
        return Between(rewrite(node.operand, mapping),
                       rewrite(node.low, mapping),
                       rewrite(node.high, mapping), node.negated)
    if isinstance(node, Like):
        return Like(rewrite(node.operand, mapping),
                    rewrite(node.pattern, mapping), node.negated)
    if isinstance(node, FuncCall):
        return FuncCall(node.name, [rewrite(a, mapping) for a in node.args])
    if isinstance(node, Case):
        return Case([(rewrite(c, mapping), rewrite(v, mapping))
                     for c, v in node.whens],
                    rewrite(node.default, mapping) if node.default else None)
    if isinstance(node, Aggregate):
        raise DatabaseError(
            "aggregate %r used outside an aggregation context" % (node,))
    return node
