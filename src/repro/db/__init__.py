"""The relational engine substrate with IFDB label enforcement.

The public surface is :class:`Database` (the engine),
:class:`~repro.db.session.Session` (a connection bound to an IFC
process), and the schema-definition classes.
"""

from .catalog import AFTER, BEFORE, DEFERRED, DELETE, INSERT, UPDATE
from .engine import Database
from .schema import (
    CheckConstraint,
    Column,
    ForeignKeyConstraint,
    LabelCheckConstraint,
    TableSchema,
    UniqueConstraint,
)
from .session import Result, Row, Session
from .transactions import SERIALIZABLE, SNAPSHOT
from .types import (
    BOOL,
    FLOAT,
    INT,
    LABEL,
    NUMERIC,
    TEXT,
    TIMESTAMP,
    TextType,
    type_by_name,
)

__all__ = [
    "AFTER", "BEFORE", "BOOL", "CheckConstraint", "Column", "DEFERRED",
    "DELETE", "Database", "FLOAT", "ForeignKeyConstraint", "INSERT", "INT",
    "LABEL", "LabelCheckConstraint", "NUMERIC", "Result", "Row",
    "SERIALIZABLE", "SNAPSHOT", "Session", "TEXT", "TIMESTAMP",
    "TableSchema", "TextType", "UPDATE", "UniqueConstraint",
    "type_by_name",
]
