"""Database sessions: statement execution under Query by Label.

A :class:`Session` binds a database to an :class:`~repro.core.process.IFCProcess`.
Every statement runs under the session's *acting context* (normally the
process itself; triggers may push isolated contexts, see
:mod:`repro.db.triggers`).  The session enforces, per section 4.2:

* SELECT returns only tuples whose labels are covered by the acting label
  (done in the scan nodes);
* INSERT writes tuples with *exactly* the acting label;
* UPDATE/DELETE affect only tuples whose labels equal the acting label —
  a visible lower-labelled tuple makes the statement fail, an invisible
  tuple is simply unaffected;
* COMMIT checks the transaction commit label against the write set
  (section 5.1), after running deferred triggers with their statement
  labels (section 5.2.3).
"""

from __future__ import annotations

import contextlib
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.labels import EMPTY_LABEL, Label
from ..core.rules import covers, same_contamination
from ..errors import (
    CatalogError,
    DatabaseError,
    IFCViolation,
    SerializationError,
    TransactionError,
)
from ..sql import ast
from . import constraints
from .catalog import AFTER, BEFORE, DEFERRED, DELETE, INSERT, UPDATE
from .physical import DeterministicOrder, ExecContext
from .triggers import ActingContext, ProcessActing, fire_triggers


class Row:
    """One result row: positional and by-name access, plus its label."""

    __slots__ = ("_values", "_columns", "label")

    def __init__(self, values: Sequence, columns: dict, label: Label):
        self._values = values
        self._columns = columns
        self.label = label

    def __getitem__(self, key):
        if isinstance(key, str):
            return self._values[self._columns[key]]
        return self._values[key]

    def get(self, key, default=None):
        try:
            return self[key]
        except (KeyError, IndexError):
            return default

    def __iter__(self):
        return iter(self._values)

    def __len__(self):
        return len(self._values)

    def keys(self):
        return self._columns.keys()

    def as_dict(self) -> dict:
        return {name: self._values[i] for name, i in self._columns.items()}

    def __eq__(self, other):
        if isinstance(other, Row):
            return list(self._values) == list(other._values)
        if isinstance(other, (tuple, list)):
            return list(self._values) == list(other)
        return NotImplemented

    def __repr__(self):
        return "Row(%r)" % (self.as_dict(),)


class Result:
    """The outcome of one statement."""

    def __init__(self, columns: Optional[List[str]] = None,
                 rows: Optional[List[Row]] = None, rowcount: int = 0):
        self.columns = columns or []
        self.rows = rows or []
        self.rowcount = rowcount

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)

    def first(self) -> Optional[Row]:
        return self.rows[0] if self.rows else None

    def scalar(self):
        """The single value of a single-row, single-column result."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def __repr__(self):
        return "Result(columns=%r, rows=%d)" % (self.columns, len(self.rows))


class Session:
    """A connection to the database, bound to an IFC process."""

    def __init__(self, db, process=None):
        self.db = db
        self.process = process
        if process is not None:
            process.attach_session(self)
        self._acting_stack: List[ActingContext] = [ProcessActing(process)]
        self.transaction = None
        self._autocommit_depth = 0
        self.statements_executed = 0

    # ------------------------------------------------------------------
    # acting context
    # ------------------------------------------------------------------
    @property
    def acting(self) -> ActingContext:
        return self._acting_stack[-1]

    @contextlib.contextmanager
    def acting_as(self, acting: ActingContext):
        self._acting_stack.append(acting)
        try:
            yield
        finally:
            self._acting_stack.pop()

    @property
    def label(self) -> Label:
        if not self.db.ifc_enabled:
            return EMPTY_LABEL
        return self.acting.label

    @property
    def ilabel(self) -> Label:
        if not self.db.ifc_enabled:
            return EMPTY_LABEL
        return self.acting.ilabel

    def requires_clearance(self) -> bool:
        """Does the clearance rule (section 5.1) currently apply?"""
        from .transactions import SERIALIZABLE
        return (self.db.ifc_enabled and self.transaction is not None
                and self.transaction.isolation == SERIALIZABLE)

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def begin(self, isolation: Optional[str] = None) -> None:
        if self.transaction is not None:
            raise TransactionError("a transaction is already open")
        self.transaction = self.db.txn_manager.begin(
            isolation or self.db.default_isolation)

    def commit(self) -> None:
        """Run deferred actions, check the commit label, log, and commit.

        Ordering is the durability contract: the transaction's WAL
        record must be durable (written *and* fsynced — see
        ``db/wal.py``) before ``txn_manager.commit`` acknowledges it.
        Any failure in that chain — deferred action, commit-label rule,
        torn log write, refused fsync — aborts the transaction, so a
        commit the client was never told about can't survive a crash
        and a crash can't surface a commit the client saw fail.
        """
        txn = self.transaction
        if txn is None:
            raise TransactionError("no transaction to commit")
        try:
            for action in txn.deferred:
                action.fn()
            if self.db.ifc_enabled:
                self.db.txn_manager.check_commit_label(
                    txn, self.label, self.db.authority.tags)
            self.db._wal_log_commit(txn)
        except BaseException:
            self.db.txn_manager.abort(txn)
            self.transaction = None
            raise
        self.db.txn_manager.commit(txn)
        self.transaction = None

    def rollback(self) -> None:
        txn = self.transaction
        if txn is None:
            raise TransactionError("no transaction to roll back")
        self.db.txn_manager.abort(txn)
        self.transaction = None

    @contextlib.contextmanager
    def _autocommit(self):
        """Wrap a statement in an implicit transaction when none is open."""
        if self.transaction is not None:
            yield
            return
        self.begin()
        try:
            yield
        except BaseException:
            if self.transaction is not None:
                self.rollback()
            raise
        else:
            self.commit()

    @contextlib.contextmanager
    def atomic(self, isolation: Optional[str] = None):
        """Explicit transaction as a context manager."""
        self.begin(isolation)
        try:
            yield self
        except BaseException:
            if self.transaction is not None:
                self.rollback()
            raise
        else:
            self.commit()

    # ------------------------------------------------------------------
    # statement execution
    # ------------------------------------------------------------------
    def execute(self, sql: str, params: Sequence = ()) -> Result:
        """Parse (cached), plan (cached), and execute one statement."""
        statement = self.db.parse(sql)
        return self.execute_statement(statement, tuple(params), sql=sql)

    def execute_script(self, sql: str) -> None:
        """Execute a semicolon-separated batch (DDL convenience)."""
        for statement in self.db.parse_script(sql):
            self.execute_statement(statement, ())

    def query(self, sql: str, params: Sequence = ()) -> List[Row]:
        return self.execute(sql, params).rows

    def execute_statement(self, statement, params: Tuple,
                          sql: Optional[str] = None) -> Result:
        self.statements_executed += 1
        db = self.db
        db.statements_executed += 1
        # SELECT/INSERT/UPDATE/DELETE are *tracked*: the engine diffs a
        # counter read around each one (statement stats, slow-query
        # log, per-statement audit attribution).  Everything else —
        # transaction control, DDL, EXPLAIN — runs untracked.
        try:
            if isinstance(statement, ast.Select):
                track = db._begin_statement()
                result = self._execute_select(statement, params, sql)
            elif isinstance(statement, ast.Insert):
                track = db._begin_statement()
                with self._autocommit():
                    result = self._execute_insert(statement, params, sql)
            elif isinstance(statement, ast.Update):
                track = db._begin_statement()
                with self._autocommit():
                    result = self._execute_update(statement, params, sql)
            elif isinstance(statement, ast.Delete):
                track = db._begin_statement()
                with self._autocommit():
                    result = self._execute_delete(statement, params, sql)
            else:
                return self._execute_other(statement, params, sql)
        except IFCViolation as error:
            # Write-rule / commit-label denial: IFC audit trail.
            db._audit_denial(statement, sql, error)
            raise
        db._finish_statement(track, statement, sql, result.rowcount)
        return result

    def _execute_other(self, statement, params: Tuple,
                       sql: Optional[str]) -> Result:
        """The untracked statement forms (see ``execute_statement``)."""
        if isinstance(statement, ast.Begin):
            self.begin(statement.isolation)
            return Result()
        if isinstance(statement, ast.Commit):
            self.commit()
            return Result()
        if isinstance(statement, ast.Rollback):
            self.rollback()
            return Result()
        if isinstance(statement, ast.Call):
            return self._execute_call(statement, params)
        if isinstance(statement, ast.Vacuum):
            self.db.vacuum(statement.table)
            return Result()
        if isinstance(statement, ast.Analyze):
            self.db.analyze(statement.table)
            return Result()
        if isinstance(statement, ast.Explain):
            return self._execute_explain(statement, params)
        # DDL is delegated to the engine.
        return self.db.execute_ddl(self, statement)

    def _execute_explain(self, statement: ast.Explain,
                         params: Tuple = ()) -> Result:
        """EXPLAIN [ANALYZE]: render the plan the engine would execute,
        one operator per row.

        Plain EXPLAIN runs nothing, so results carry empty labels; the
        plan *shape* only reveals schema facts (indexes, views) the
        catalog already exposes.  EXPLAIN ANALYZE executes the
        statement (discarding its rows; DML applies its writes exactly
        once) and annotates each operator with measured actuals —
        physical execution facts (timings, buffer touches) that, like
        any timing channel (section 7.3), belong to trusted principals;
        see the Observability notes in ARCHITECTURE.md."""
        if statement.analyze:
            lines = self._explain_analyze(statement.statement, params)
        else:
            lines = self.db.explain(statement.statement)
        columns = {"QUERY PLAN": 0}
        rows = [Row([line], columns, EMPTY_LABEL) for line in lines]
        return Result(["QUERY PLAN"], rows, len(rows))

    def _explain_analyze(self, inner, params: Tuple) -> List[str]:
        """Execute ``inner`` under per-operator instrumentation.

        The recorder clones the cached plan tree and wraps each node in
        a probe (the cached original is never mutated), executes the
        statement through the probes — the *same* session code paths as
        a plain execution, so DML side effects happen exactly once —
        and renders the original tree annotated with actuals.
        """
        from .metrics import PlanRecorder
        db = self.db
        recorder = PlanRecorder(db)
        if isinstance(inner, ast.Select):
            prepared = db.prepare_select(inner, None)
            plan = recorder.instrument(prepared.plan)
            if db.deterministic_order:
                plan = DeterministicOrder(plan)
            with self._autocommit():
                ctx = self._context(params)
                recorder.start()
                if plan.batch_size:
                    for _batch in plan.batches(ctx):
                        pass
                else:
                    for _row in plan.rows(ctx):
                        pass
                recorder.finish()
            return recorder.render(prepared.plan)
        if isinstance(inner, (ast.Update, ast.Delete)):
            prepared = db.prepare_dml(inner, None)
            probe = recorder.instrument(prepared.plan)
            update = isinstance(inner, ast.Update)
            with self._autocommit():
                recorder.start()
                if update:
                    result = self._execute_update(inner, params, None,
                                                  plan=probe)
                else:
                    result = self._execute_delete(inner, params, None,
                                                  plan=probe)
                recorder.finish()
            head = "%s %s  (actual rows=%d)" % (
                "Update" if update else "Delete", inner.table,
                result.rowcount)
            return ([head] + recorder.render_plan(prepared.plan, indent=1)
                    + recorder.render_summary())
        raise DatabaseError(
            "EXPLAIN ANALYZE supports SELECT, UPDATE, and DELETE, not %s"
            % type(inner).__name__)

    def _context(self, params: Tuple) -> ExecContext:
        return ExecContext(self, params, self.label, self.ilabel,
                           self.acting.principal)

    # -- SELECT -----------------------------------------------------------
    def _execute_select(self, statement: ast.Select, params: Tuple,
                        sql: Optional[str]) -> Result:
        prepared = self.db.prepare_select(statement, sql)
        plan = prepared.plan
        if self.db.deterministic_order:
            plan = DeterministicOrder(plan)
        with self._autocommit():
            ctx = self._context(params)
            columns = {name: i for i, name in enumerate(prepared.columns)}
            if plan.batch_size:
                # Batched plan: drain whole RowBatches from the root
                # instead of pulling the per-row compatibility shim.
                rows = []
                extend = rows.extend
                for batch in plan.batches(ctx):
                    extend(Row(values, columns, label) for values, label
                           in zip(batch.values, batch.labels))
            else:
                rows = [Row(values, columns, label)
                        for values, label, _ilabel in plan.rows(ctx)]
        return Result(list(prepared.columns), rows, len(rows))

    # -- INSERT -----------------------------------------------------------
    def _execute_insert(self, statement: ast.Insert, params: Tuple,
                        sql: Optional[str] = None) -> Result:
        prepared = self.db.prepare_insert(statement, sql)
        table = prepared.table
        positions = prepared.target_positions
        declassifying = self.db.resolve_tag_label(statement.declassifying)
        ctx = self._context(params)

        source_rows: Iterable[Sequence]
        if prepared.select is not None:
            select_plan = prepared.select.plan
            if select_plan.batch_size:
                source_rows = [values for batch in select_plan.batches(ctx)
                               for values in batch.values]
            else:
                source_rows = [values for values, _l, _i
                               in select_plan.rows(ctx)]
        else:
            source_rows = [[fn([], ctx) for fn in row]
                           for row in prepared.row_fns]

        count = 0
        for source in source_rows:
            if len(source) != len(positions):
                raise DatabaseError(
                    "INSERT expects %d values, got %d"
                    % (len(positions), len(source)))
            full = list(prepared.defaults)
            for position, value in zip(positions, source):
                full[position] = value
            self.insert_row(table, tuple(full), declassifying, ctx)
            count += 1
        return Result(rowcount=count)

    def insert_row(self, table, values: Tuple, declassifying: Label,
                   ctx: Optional[ExecContext] = None) -> None:
        """The INSERT pipeline: triggers, constraints, heap write."""
        if ctx is None:
            ctx = self._context(())
        txn = self.transaction
        if txn is None:
            raise TransactionError("insert_row requires an open transaction")
        label = self.label
        ilabel = self.ilabel
        statement_label = label

        values = fire_triggers(self.db, self, table, INSERT, BEFORE, None,
                               values, statement_label)
        values = table.schema.coerce_row(values)

        if self.db.ifc_enabled:
            constraints.check_label_constraints(self.db, ctx, table, values,
                                                label)
        constraints.check_checks(self.db, ctx, table, values, label)
        constraints.check_unique(self.db, self, table, values, label)
        constraints.check_fk_insert(self.db, self, table, values, label,
                                    declassifying)

        version = table.append(values, label, ilabel, txn.xid)
        txn.record_write(table.name, version.tid, version.label, "insert")
        self.db.rows_inserted += 1

        fire_triggers(self.db, self, table, INSERT, AFTER, None, values,
                      statement_label)
        fire_triggers(self.db, self, table, INSERT, DEFERRED, None, values,
                      statement_label)

    def insert(self, table_name: str, declassifying: Sequence[str] = (),
               **column_values) -> None:
        """Programmatic insert convenience (keyword columns)."""
        table = self.db.catalog.get_table(table_name)
        schema = table.schema
        full = []
        for column in schema.columns:
            if column.name in column_values:
                full.append(column_values.pop(column.name))
            elif column.has_default:
                full.append(column.default)
            else:
                full.append(None)
        if column_values:
            raise CatalogError("unknown columns %r for table %s"
                               % (sorted(column_values), table_name))
        with self._autocommit():
            self.insert_row(table, tuple(full),
                            self.db.resolve_tag_label(declassifying))

    # -- UPDATE -----------------------------------------------------------
    def _execute_update(self, statement: ast.Update, params: Tuple,
                        sql: Optional[str], plan=None) -> Result:
        # ``plan`` overrides the target enumeration (EXPLAIN ANALYZE
        # passes the instrumented copy); everything else — write rule,
        # constraints, triggers, version stamping — is identical, so
        # an analyzed DML statement applies its writes exactly once.
        table = self.db.catalog.get_table(statement.table)
        prepared = self.db.prepare_dml(statement, sql)
        if plan is None:
            plan = prepared.plan
        ctx = self._context(params)
        txn = self.transaction
        registry = self.db.authority.tags
        acting_label = self.label
        statement_label = acting_label
        schema = table.schema
        ifc = self.db.ifc_enabled

        targets = list(plan.versions(ctx))
        count = 0
        key_positions = self._referenced_key_positions(table)
        for version in targets:
            if ifc and not same_contamination(registry, version.label,
                                              acting_label):
                raise IFCViolation(
                    "UPDATE on %s would modify a tuple with label %r; the "
                    "acting label is %r (write rule, section 4.2)"
                    % (table.name, version.label, acting_label))
            if self.db.txn_manager.delete_conflicts(version, txn):
                raise SerializationError(
                    "concurrent update detected on %s (first committer wins)"
                    % table.name)
            row = list(version.values) + [version.label]
            new_values = list(version.values)
            for position, fn in prepared.assignments:
                new_values[position] = fn(row, ctx)
            new_values = fire_triggers(self.db, self, table, UPDATE, BEFORE,
                                       version.values, tuple(new_values),
                                       statement_label)
            new_values = schema.coerce_row(new_values)

            if ifc:
                constraints.check_label_constraints(self.db, ctx, table,
                                                    new_values, acting_label)
            constraints.check_checks(self.db, ctx, table, new_values,
                                     acting_label)
            constraints.check_unique(self.db, self, table, new_values,
                                     acting_label, exclude_tid=version.tid)
            if self._fk_columns_changed(table, version.values, new_values):
                constraints.check_fk_insert(self.db, self, table, new_values,
                                            acting_label, EMPTY_LABEL)
            if key_positions and any(
                    version.values[p] != new_values[p]
                    for p in key_positions):
                constraints.check_fk_restrict(self.db, self, table,
                                              version.values)

            version.xmax = txn.xid
            new_version = table.append(new_values, version.label,
                                       version.ilabel, txn.xid)
            txn.record_write(table.name, new_version.tid, new_version.label,
                             "update", prev_tid=version.tid)
            count += 1
            self.db.rows_updated += 1
            fire_triggers(self.db, self, table, UPDATE, AFTER,
                          version.values, new_values, statement_label)
            fire_triggers(self.db, self, table, UPDATE, DEFERRED,
                          version.values, new_values, statement_label)
        return Result(rowcount=count)

    def _fk_columns_changed(self, table, old_values, new_values) -> bool:
        for fk in table.schema.foreign_keys:
            for position in table.schema.positions_of(fk.columns):
                if old_values[position] != new_values[position]:
                    return True
        return False

    def _referenced_key_positions(self, table):
        referencing = self.db.catalog.referencing_foreign_keys(table.name)
        positions = set()
        for _child, fk in referencing:
            positions.update(table.schema.positions_of(fk.ref_columns))
        return positions

    # -- DELETE -----------------------------------------------------------
    def _execute_delete(self, statement: ast.Delete, params: Tuple,
                        sql: Optional[str], plan=None) -> Result:
        # ``plan`` override: see ``_execute_update``.
        table = self.db.catalog.get_table(statement.table)
        prepared = self.db.prepare_dml(statement, sql)
        if plan is None:
            plan = prepared.plan
        ctx = self._context(params)
        txn = self.transaction
        registry = self.db.authority.tags
        acting_label = self.label
        statement_label = acting_label
        ifc = self.db.ifc_enabled

        targets = list(plan.versions(ctx))
        count = 0
        for version in targets:
            if ifc and not same_contamination(registry, version.label,
                                              acting_label):
                raise IFCViolation(
                    "DELETE on %s would remove a tuple with label %r; the "
                    "acting label is %r (write rule, section 4.2)"
                    % (table.name, version.label, acting_label))
            if self.db.txn_manager.delete_conflicts(version, txn):
                raise SerializationError(
                    "concurrent delete detected on %s (first committer wins)"
                    % table.name)
            constraints.check_fk_restrict(self.db, self, table,
                                          version.values)
            fire_triggers(self.db, self, table, DELETE, BEFORE,
                          version.values, None, statement_label)
            version.xmax = txn.xid
            table.modifications += 1
            txn.record_write(table.name, version.tid, version.label,
                             "delete")
            count += 1
            self.db.rows_deleted += 1
            fire_triggers(self.db, self, table, DELETE, AFTER,
                          version.values, None, statement_label)
            fire_triggers(self.db, self, table, DELETE, DEFERRED,
                          version.values, None, statement_label)
        return Result(rowcount=count)

    # -- stored procedures ---------------------------------------------------
    def _execute_call(self, statement: ast.Call, params: Tuple) -> Result:
        from .expressions import Scope
        compiler = self.db.planner.compiler(Scope())
        ctx = self._context(params)
        args = [compiler.compile(a)([], ctx) for a in statement.args]
        value = self.call(statement.name, *args)
        return Result(columns=["result"],
                      rows=[Row([value], {"result": 0}, EMPTY_LABEL)],
                      rowcount=1)

    def call(self, procedure_name: str, *args):
        """Invoke a stored procedure (section 4.3).

        Ordinary procedures run with the caller's authority; stored
        authority closures run with their bound principal's authority
        (the label context stays the process's either way).
        """
        proc = self.db.catalog.get_procedure(procedure_name)
        if proc.closure_principal is not None:
            if self.process is not None:
                return self.process.with_reduced_authority(
                    proc.closure_principal, proc.fn, self, *args)
            from .triggers import FixedActing
            acting = FixedActing(self.db.authority, self.label, self.ilabel,
                                 proc.closure_principal)
            with self.acting_as(acting):
                return proc.fn(self, *args)
        return proc.fn(self, *args)

    # -- the per-tuple label iterator (paper section 10, future work) -----
    def for_each_with_label(self, sql: str, fn, params: Sequence = (),
                            cover_tags: Sequence[int] = ()):
        """Handle each selected tuple in its own context with that
        tuple's label.

        The paper's future-work iterator: a computation over many users'
        data often wants to *write back* per-user results under each
        user's own label, without ever mixing contaminations.  The query
        runs in a probe context whose label is raised by ``cover_tags``
        (typically a compound tag the caller is authoritative for); then
        ``fn(row, scoped_session)`` runs once per row in an isolated
        acting context carrying exactly that row's label — its writes
        are labelled per-tuple, and nothing contaminates the caller.

        Returns the list of ``fn`` results.
        """
        from .triggers import FixedActing
        acting = self.acting
        probe = FixedActing(self.db.authority,
                            acting.label.union(Label(cover_tags)),
                            acting.ilabel, acting.principal)
        with self.acting_as(probe):
            result = self.execute(sql, params)
        outputs = []
        for row in result.rows:
            scoped = FixedActing(self.db.authority, row.label,
                                 acting.ilabel, acting.principal)
            with self.acting_as(scoped):
                outputs.append(fn(row, self))
        return outputs

    def close(self) -> None:
        if self.transaction is not None:
            self.rollback()
