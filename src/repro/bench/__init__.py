"""Benchmark harness: stack builders, timing meters, report tables."""

from .harness import (
    CarTelStack,
    Measurement,
    ReportTable,
    build_cartel_stack,
    db_time_meter,
    mean,
    measure_ingest_pair,
    measure_ingest_throughput,
    measure_request_latency,
    measure_service_demands,
    percentile,
    relative,
)

__all__ = [
    "CarTelStack",
    "Measurement",
    "ReportTable",
    "build_cartel_stack",
    "db_time_meter",
    "mean",
    "measure_ingest_pair",
    "measure_ingest_throughput",
    "measure_request_latency",
    "measure_service_demands",
    "percentile",
    "relative",
]
