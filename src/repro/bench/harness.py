"""Measurement harness shared by the benchmark suite.

Provides:

* stack builders that assemble a complete CarTel deployment (database +
  runtime + app + portal + accounts + GPS history) in either **IFDB**
  mode or **baseline** mode (``ifc_enabled=False`` — the same engine and
  platform with information flow control compiled out, standing in for
  stock PostgreSQL + PHP);
* a database-time meter that splits a request's cost into web-tier time
  and database time (used to parameterize the Figure 4 queueing model);
* latency/throughput measurement helpers and a paper-vs-measured table
  formatter used by every benchmark's report.
"""

from __future__ import annotations

import contextlib
import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..apps.cartel import (
    CarTelApp,
    SensorProcessor,
    TraceGenerator,
    build_portal,
    install_driveupdate_trigger,
)
from ..core.authority import AuthorityState
from ..core.idgen import SeededIdGenerator
from ..db import session as dbsession
from ..db.engine import Database
from ..platform.runtime import IFRuntime
from ..platform.web import Request, WebApp
from ..workloads.cartel_mix import REQUEST_MIX
from ..workloads.loadgen import ServiceDemand

# ---------------------------------------------------------------------------
# generic statistics
# ---------------------------------------------------------------------------

def percentile(values: Sequence[float], p: float) -> float:
    """The p-th percentile (0..1) of a non-empty sequence."""
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(p * len(ordered)))
    return ordered[index]


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


@dataclass
class Measurement:
    name: str
    samples: List[float]

    @property
    def mean(self) -> float:
        return mean(self.samples)

    @property
    def median(self) -> float:
        return percentile(self.samples, 0.5)

    @property
    def p90(self) -> float:
        return percentile(self.samples, 0.9)


# ---------------------------------------------------------------------------
# database-time metering
# ---------------------------------------------------------------------------

@contextlib.contextmanager
def db_time_meter():
    """Temporarily instrument Session.execute_statement to accumulate the
    wall time spent inside the database (reentrancy-safe: nested trigger
    statements are not double counted)."""
    acc = {"time": 0.0, "depth": 0}
    original = dbsession.Session.execute_statement

    def timed(self, *args, **kwargs):
        if acc["depth"]:
            return original(self, *args, **kwargs)
        acc["depth"] += 1
        start = time.perf_counter()
        try:
            return original(self, *args, **kwargs)
        finally:
            acc["time"] += time.perf_counter() - start
            acc["depth"] -= 1

    dbsession.Session.execute_statement = timed
    try:
        yield acc
    finally:
        dbsession.Session.execute_statement = original


# ---------------------------------------------------------------------------
# CarTel stack builder
# ---------------------------------------------------------------------------

@dataclass
class CarTelStack:
    """A fully populated CarTel deployment ready to serve requests."""

    db: Database
    runtime: IFRuntime
    app: CarTelApp
    web: WebApp
    tokens: List[str]               # one session token per user
    usernames: List[str]
    ifc_enabled: bool

    def request(self, rng: random.Random, path: str) -> Request:
        token = self.tokens[rng.randrange(len(self.tokens))]
        return Request(path, session_token=token)


def build_cartel_stack(*, ifc_enabled: bool = True, n_users: int = 8,
                       cars_per_user: int = 2, measurements: int = 1200,
                       friends_per_user: int = 2, seed: int = 1234,
                       buffer_pages: Optional[int] = None,
                       io_penalty: float = 0.0,
                       page_size: int = 8192) -> CarTelStack:
    """Assemble CarTel with accounts, friendships, and GPS history."""
    authority = AuthorityState(idgen=SeededIdGenerator(seed))
    db = Database(authority, ifc_enabled=ifc_enabled,
                  buffer_pages=buffer_pages, io_penalty=io_penalty,
                  page_size=page_size, seed=seed)
    runtime = IFRuntime(authority, ifc_enabled=ifc_enabled)
    app = CarTelApp(db, runtime)
    install_driveupdate_trigger(app)
    web = build_portal(app)

    usernames = ["user%d" % i for i in range(1, n_users + 1)]
    userids = []
    car_ids = []
    for name in usernames:
        userid = app.signup(name, "pw-" + name)
        userids.append(userid)
        for _ in range(cars_per_user):
            car_ids.append(app.add_car(userid))
    rng = random.Random(seed)
    for i, userid in enumerate(userids):
        for k in range(1, friends_per_user + 1):
            friend = userids[(i + k) % len(userids)]
            if friend != userid:
                app.befriend(userid, friend)

    generator = TraceGenerator(car_ids, seed=seed)
    processor = SensorProcessor(app)
    processor.process_measurements(generator.measurements(measurements))
    # Optimizer statistics over the populated tables (ANALYZE): the
    # request handlers are then planned from real cardinalities.
    db.analyze()

    tokens = [web.login(name, "pw-" + name) for name in usernames]
    return CarTelStack(db=db, runtime=runtime, app=app, web=web,
                       tokens=tokens, usernames=usernames,
                       ifc_enabled=ifc_enabled)


# ---------------------------------------------------------------------------
# request measurements
# ---------------------------------------------------------------------------

def measure_request_latency(stack: CarTelStack, path: str,
                            repeats: int = 30,
                            seed: int = 7) -> Measurement:
    """Serial request latency on an idle system (Figure 5 methodology).

    Microsecond-scale handlers are at the mercy of GC pauses and OS
    scheduling, so callers should compare *medians*; garbage collection
    is forced out of the timed region.
    """
    import gc
    rng = random.Random(seed)
    samples = []
    # Warm up caches and plan/parse caches first.
    for _ in range(3):
        stack.web.handle(stack.request(rng, path))
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            request = stack.request(rng, path)
            start = time.perf_counter()
            response = stack.web.handle(request)
            samples.append(time.perf_counter() - start)
            assert response.status == 200, (path, response.status)
    finally:
        gc.enable()
    return Measurement(path, samples)


def measure_service_demands(stack: CarTelStack, repeats: int = 20,
                            seed: int = 11,
                            web_cpu_scale: float = 1.0
                            ) -> Dict[str, ServiceDemand]:
    """Split each request type's cost into web-tier and database time.

    ``web_cpu_scale`` models the hardware imbalance of the paper's
    testbed (hyper-threaded Pentium 4 web servers vs a 16-core database
    server): the measured web time is multiplied by it identically for
    IFDB and baseline.  Database time includes any simulated I/O charged
    by the buffer-cache model.
    """
    rng = random.Random(seed)
    demands: Dict[str, ServiceDemand] = {}
    for path, _weight in REQUEST_MIX:
        for _ in range(2):
            stack.web.handle(stack.request(rng, path))       # warm-up
        web_samples = []
        db_samples = []
        for _ in range(repeats):
            request = stack.request(rng, path)
            io_before = stack.db.buffer_cache.stats.io_time
            with db_time_meter() as meter:
                start = time.perf_counter()
                response = stack.web.handle(request)
                elapsed = time.perf_counter() - start
            assert response.status == 200, (path, response.status)
            io_delta = stack.db.buffer_cache.stats.io_time - io_before
            db_samples.append(meter["time"] + io_delta)
            web_samples.append(max(0.0, elapsed - meter["time"]))
        # Medians: request handling is microseconds-scale, where GC and
        # scheduler noise would otherwise dominate a mean.
        demands[path] = ServiceDemand(
            web=percentile(web_samples, 0.5) * web_cpu_scale,
            db=percentile(db_samples, 0.5))
    return demands


def _ingest_rig(*, ifc_enabled: bool, n_users: int, cars_per_user: int,
                seed: int):
    stack = build_cartel_stack(ifc_enabled=ifc_enabled, n_users=n_users,
                               cars_per_user=cars_per_user,
                               measurements=200,   # pre-existing history
                               seed=seed)
    car_ids = [row[0] for row in stack.db.connect(
        _probe_process(stack)).query("SELECT carid FROM Cars")]
    generator = TraceGenerator(car_ids, seed=seed + 1,
                               start_ts=2_000_000.0)
    return stack, generator, SensorProcessor(stack.app)


def _ingest_round(generator, processor, measurements: int) -> float:
    import gc
    batch = list(generator.measurements(measurements))
    gc.collect()
    start = time.perf_counter()
    processor.process_measurements(batch)
    return measurements / (time.perf_counter() - start)


def measure_ingest_throughput(*, ifc_enabled: bool, measurements: int = 2000,
                              n_users: int = 6, cars_per_user: int = 2,
                              seed: int = 99, best_of: int = 3) -> float:
    """Sensor-processing throughput in measurements/second (section 8.2.2).

    Runs ``best_of`` replay rounds and reports the fastest — the
    standard way to strip scheduler/GC interference from a CPU-bound
    measurement.
    """
    _stack, generator, processor = _ingest_rig(
        ifc_enabled=ifc_enabled, n_users=n_users,
        cars_per_user=cars_per_user, seed=seed)
    return max(_ingest_round(generator, processor, measurements)
               for _ in range(best_of))


def measure_ingest_pair(*, measurements: int = 2000, n_users: int = 6,
                        cars_per_user: int = 2, seed: int = 99,
                        rounds: int = 4) -> Tuple[float, float]:
    """(baseline, IFDB) ingest throughput, rounds interleaved so ambient
    machine noise hits both systems equally."""
    _b_stack, b_gen, b_proc = _ingest_rig(
        ifc_enabled=False, n_users=n_users, cars_per_user=cars_per_user,
        seed=seed)
    _i_stack, i_gen, i_proc = _ingest_rig(
        ifc_enabled=True, n_users=n_users, cars_per_user=cars_per_user,
        seed=seed)
    base_best = 0.0
    ifdb_best = 0.0
    for _round in range(rounds):
        base_best = max(base_best,
                        _ingest_round(b_gen, b_proc, measurements))
        ifdb_best = max(ifdb_best,
                        _ingest_round(i_gen, i_proc, measurements))
    return base_best, ifdb_best


def _probe_process(stack: CarTelStack):
    from ..core.process import IFCProcess
    process = IFCProcess(stack.app.authority, stack.app.ingestd.id)
    process.add_secrecy(stack.app.all_drives.id)
    return process


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------

class ReportTable:
    """Fixed-width paper-vs-measured table printed by each benchmark."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add(self, *cells) -> None:
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = ["", "=== %s ===" % self.title]
        header = "  ".join(c.ljust(widths[i])
                           for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
        return "\n".join(lines)

    def show(self) -> None:
        print(self.render())


def relative(a: float, b: float) -> str:
    """Format a/b as a signed percentage difference of a versus b."""
    if b == 0:
        return "n/a"
    return "%+.1f%%" % (100.0 * (a - b) / b)
