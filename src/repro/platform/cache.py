"""The platform's authority cache (section 7.2).

PHP-IF keeps a shared-memory cache of principals, tags, and authority
state because the platform "frequently checks whether the current
principal is allowed to release information given the contamination
reflected in the process's label", and asking the database every time
would dominate request latency.

This cache memoizes ``has_authority`` lookups, invalidated wholesale
whenever the authority state's version counter moves (delegations,
revocations, or new tags).  Hit/miss statistics feed the ablation
benchmark that reproduces the paper's claim that the cache matters.
"""

from __future__ import annotations

from typing import Dict, Tuple


class AuthorityCache:
    """Version-validated memo of (principal, tag) -> bool."""

    def __init__(self, authority, enabled: bool = True):
        self.authority = authority
        self.enabled = enabled
        self._entries: Dict[Tuple[int, int], bool] = {}
        self._version = authority.version
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def _validate(self) -> None:
        if self.authority.version != self._version:
            self._entries.clear()
            self._version = self.authority.version
            self.invalidations += 1

    def has_authority(self, principal: int, tag: int) -> bool:
        if not self.enabled:
            self.misses += 1
            return self.authority.has_authority(principal, tag)
        self._validate()
        key = (principal, tag)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = self.authority.has_authority(principal, tag)
        self._entries[key] = result
        return result

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
