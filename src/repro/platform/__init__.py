"""The IFC application platform (PHP-IF / Python-IF analogue, section 7.2).

Provides :class:`IFRuntime` (spawn processes with interposed output),
:class:`AppProcess`, label-synchronized :class:`IFConnection` objects,
the platform authority cache, and a small IFC-aware web framework.
"""

from .cache import AuthorityCache
from .connection import IFConnection
from .protocol import LabelUpdate, ProtocolStats, ResultMessage, \
    StatementMessage
from .runtime import AppProcess, IFRuntime
from .web import Request, Response, WebApp, WebContext

__all__ = [
    "AppProcess",
    "AuthorityCache",
    "IFConnection",
    "IFRuntime",
    "LabelUpdate",
    "ProtocolStats",
    "Request",
    "Response",
    "ResultMessage",
    "StatementMessage",
    "WebApp",
    "WebContext",
]
