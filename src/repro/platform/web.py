"""A minimal IFC-aware web framework.

Models the Apache + PHP-IF tier of Figure 1.  Each request runs in a
fresh :class:`AppProcess` whose principal is the authenticated user (or
a fresh no-authority principal for unauthenticated requests — the IFDB
behaviour that defanged CarTel's twelve unauthenticated scripts,
section 6.1).  The handler's return value passes through the release
gate: a contaminated process produces **no output**, exactly like the
coerced-URL attack of section 6.1 ("it would produce no output
regardless of what it read").
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..core.labels import EMPTY_LABEL
from ..errors import AuthenticationError, IFCError, ReleaseError
from .runtime import AppProcess, IFRuntime


@dataclass
class Request:
    path: str
    params: Dict[str, object] = field(default_factory=dict)
    session_token: Optional[str] = None


@dataclass
class Response:
    status: int
    body: object = None

    @property
    def ok(self) -> bool:
        return self.status == 200


class WebContext:
    """Everything a request handler gets: the process, a DB connection,
    and the request."""

    def __init__(self, process: AppProcess, connection, request: Request,
                 user: Optional[str]):
        self.process = process
        self.db = connection
        self.request = request
        self.user = user          # authenticated username, or None

    def param(self, name: str, default=None):
        return self.request.params.get(name, default)


class WebApp:
    """Routes, cookie sessions, and the per-request IFC lifecycle."""

    def __init__(self, runtime: IFRuntime, db, *,
                 authenticator: Optional[Callable] = None):
        """``authenticator(username, password)`` returns a principal id on
        success and None on failure.  It is part of the trusted base
        (Figure 1): it decides whose authority a request wields."""
        self.runtime = runtime
        self.database = db
        self.authenticator = authenticator
        self._routes: Dict[str, Callable] = {}
        self._route_requires_auth: Dict[str, bool] = {}
        self._sessions: Dict[str, tuple] = {}    # token -> (user, principal)
        self.requests_served = 0
        self.releases_blocked = 0

    # -- registration -------------------------------------------------------
    def route(self, path: str, *, authenticate: bool = True):
        def register(handler: Callable) -> Callable:
            self._routes[path] = handler
            self._route_requires_auth[path] = authenticate
            return handler
        return register

    def add_route(self, path: str, handler: Callable, *,
                  authenticate: bool = True) -> None:
        self._routes[path] = handler
        self._route_requires_auth[path] = authenticate

    # -- authentication -----------------------------------------------------
    def login(self, username: str, password: str) -> str:
        """Authenticate and mint a session token (login.php analogue)."""
        if self.authenticator is None:
            raise AuthenticationError("no authenticator configured")
        principal = self.authenticator(username, password)
        if principal is None:
            raise AuthenticationError("bad credentials for %r" % username)
        token = secrets.token_hex(16)
        self._sessions[token] = (username, principal)
        return token

    def logout(self, token: str) -> None:
        self._sessions.pop(token, None)

    # -- request lifecycle -----------------------------------------------
    def handle(self, request: Request) -> Response:
        """Serve one request under information flow control."""
        self.requests_served += 1
        handler = self._routes.get(request.path)
        if handler is None:
            return Response(404)

        user = None
        principal = None
        if request.session_token is not None:
            entry = self._sessions.get(request.session_token)
            if entry is not None:
                user, principal = entry
        if principal is None:
            if self._route_requires_auth.get(request.path, True):
                return Response(401)
            # Unauthenticated: a fresh principal with no authority.
            process = self.runtime.spawn_anonymous()
        else:
            process = self.runtime.spawn(principal)

        connection = process.connect(self.database)
        ctx = WebContext(process, connection, request, user)
        try:
            body = handler(ctx)
        except IFCError:
            # The handler tripped over the flow rules (e.g. it tried to
            # declassify a tag it has no authority for).  Per the paper,
            # the script "would produce no output regardless of what it
            # read" — an empty, non-committal response.
            self.releases_blocked += 1
            return Response(403, None)
        finally:
            connection.close()

        # The release gate: the response goes to the outside world
        # (empty label).  A contaminated handler produces no output.
        try:
            process.send(body, EMPTY_LABEL)
        except ReleaseError:
            self.releases_blocked += 1
            return Response(403, None)
        return Response(200, body)
