"""The IFC application runtime (the PHP-IF / Python-IF analogue).

The runtime spawns :class:`AppProcess` objects — IFC processes extended
with *output interposition*: any attempt to send data to the outside
world (HTTP responses, stdout, sockets) goes through :meth:`AppProcess.send`,
which applies the release gate.  A contaminated process simply cannot
emit (section 7.2: "PHP-IF and Python-IF interpose on output, so programs
that are too contaminated can't release information").

The runtime also owns the platform-side authority cache; declassification
and release checks consult it instead of the raw authority state.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..core.labels import EMPTY_LABEL, Label
from ..core.process import IFCProcess
from ..core.rules import strip
from ..errors import AuthorityError, ReleaseError
from .cache import AuthorityCache
from .connection import IFConnection


class AppProcess(IFCProcess):
    """An IFC process with interposed output and cached authority."""

    def __init__(self, runtime: "IFRuntime", principal: int,
                 label: Label = EMPTY_LABEL):
        super().__init__(runtime.authority, principal, label)
        self.runtime = runtime
        self.outputs: List[Tuple[object, Label]] = []

    # -- cached authority paths ------------------------------------------
    # When the runtime has IFC disabled (the "plain PHP" baseline of the
    # benchmarks), label operations are no-ops: the original applications
    # contain none of these calls, so the baseline must not pay for them.
    def add_secrecy(self, tag_id: int) -> None:
        if not self.runtime.ifc_enabled:
            return
        super().add_secrecy(tag_id)

    def delegate(self, tag_id: int, grantee: int) -> None:
        if not self.runtime.ifc_enabled:
            return
        super().delegate(tag_id, grantee)

    def has_authority(self, tag_id: int) -> bool:
        return self.runtime.cache.has_authority(self.principal, tag_id)

    def declassify(self, tag_id: int) -> None:
        """Declassify via the platform cache (hot path in PHP-IF)."""
        if not self.runtime.ifc_enabled:
            return
        if not self.runtime.cache.has_authority(self.principal, tag_id):
            tag = self.authority.tags.get(tag_id)
            principal = self.authority.principals.get(self.principal)
            raise AuthorityError(
                "principal %r has no authority for tag %r"
                % (principal.name, tag.name))
        new_label = strip(self.authority.tags, self.label,
                          Label((tag_id,)))
        if tag_id in self.label and new_label == self.label:
            new_label = self.label.without((tag_id,))
        if new_label != self.label:
            self._label = new_label
            self._bump()

    # -- output interposition -----------------------------------------------
    def send(self, data, destination_label: Label = EMPTY_LABEL) -> None:
        """Release ``data`` to a destination (default: the outside world).

        Raises :class:`ReleaseError` if the process is contaminated above
        the destination's label.  Delivered data lands in the runtime's
        outbox so tests can observe exactly what escaped.
        """
        if self.runtime.ifc_enabled and not self.can_release(
                destination_label):
            names = self.authority.describe_label(self.label)
            raise ReleaseError(
                "process contaminated with %r cannot release to a "
                "destination labelled %r" % (names, destination_label))
        self.outputs.append((data, destination_label))
        self.runtime.outbox.append((self, data, destination_label))

    def try_send(self, data,
                 destination_label: Label = EMPTY_LABEL) -> bool:
        """Like :meth:`send` but returns False instead of raising."""
        try:
            self.send(data, destination_label)
            return True
        except ReleaseError:
            return False

    # -- database access ----------------------------------------------------
    def connect(self, db) -> IFConnection:
        """Open a label-synchronized connection to an IFDB database."""
        return IFConnection(self, db)


class IFRuntime:
    """Factory and shared state for application processes."""

    def __init__(self, authority, *, ifc_enabled: bool = True,
                 cache_enabled: bool = True):
        self.authority = authority
        self.ifc_enabled = ifc_enabled
        self.cache = AuthorityCache(authority, enabled=cache_enabled)
        self.outbox: List[Tuple[AppProcess, object, Label]] = []
        self.processes_spawned = 0

    def spawn(self, principal: int, label: Label = EMPTY_LABEL) -> AppProcess:
        self.processes_spawned += 1
        return AppProcess(self, principal, label)

    def spawn_anonymous(self) -> AppProcess:
        """A process with no authority at all (unauthenticated requests).

        Each call creates a fresh principal that owns nothing and holds
        no delegations — the IFDB behaviour that neutered CarTel's
        unauthenticated scripts (section 6.1).
        """
        principal = self.authority.create_principal(
            "anonymous-%d" % (self.processes_spawned + 1))
        return self.spawn(principal.id)
