"""The client/server label-sync protocol (section 7.1, low-level interface).

IFDB extends PostgreSQL's wire protocol so the application platform and
the DBMS can share the process's label and principal: "changes are
coalesced and transmitted lazily with the next statement or result".

In this reproduction the platform and engine share the process object
in-memory, so the protocol is *modelled*: message objects are created
with the same cadence a real deployment would send them, and counters
let tests assert the lazy-coalescing behaviour (many label changes
between statements produce exactly one update message).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class LabelUpdate:
    """Piggybacked label/principal synchronisation message."""

    epoch: int
    label_tags: frozenset
    ilabel_tags: frozenset
    principal: Optional[int]


@dataclass
class StatementMessage:
    sql: str
    n_params: int


@dataclass
class ResultMessage:
    rowcount: int


@dataclass
class ProtocolStats:
    """Counters for the modelled wire protocol."""

    statements_sent: int = 0
    results_received: int = 0
    label_updates_sent: int = 0
    label_changes_coalesced: int = 0     # changes that rode along for free
    log: List[object] = field(default_factory=list)
    keep_log: bool = False

    def record(self, message) -> None:
        if self.keep_log:
            self.log.append(message)
