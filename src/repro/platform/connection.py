"""Label-synchronized database connections.

A real IFDB deployment runs the platform and the DBMS in separate
processes; the modified libpq carries the process label and principal to
the server, coalescing changes and piggybacking them on the next
statement (section 7.1).  Here both sides share the process object, so
correctness needs no wire transfer — but the connection still *models*
the protocol so its costs and cadence are observable:

* before each statement, if the process's label epoch moved since the
  last sync, exactly one :class:`LabelUpdate` message is recorded, no
  matter how many label changes happened in between (the rest count as
  coalesced);
* each statement records a :class:`StatementMessage` and a
  :class:`ResultMessage`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .protocol import LabelUpdate, ProtocolStats, ResultMessage, \
    StatementMessage


class IFConnection:
    """A session plus the modelled label-sync protocol."""

    def __init__(self, process, db):
        self.process = process
        self.db = db
        self.session = db.connect(process)
        self.stats = ProtocolStats()
        self._synced_epoch = -1

    # -- protocol modelling -------------------------------------------------
    def _sync_label(self) -> None:
        runtime = getattr(self.process, "runtime", None)
        if runtime is not None and not runtime.ifc_enabled:
            return                      # baseline: stock libpq, no label sync
        epoch = self.process.label_epoch
        if epoch == self._synced_epoch:
            return
        pending_changes = epoch - max(self._synced_epoch, 0)
        if self._synced_epoch >= 0 and pending_changes > 1:
            self.stats.label_changes_coalesced += pending_changes - 1
        self.stats.label_updates_sent += 1
        self.stats.record(LabelUpdate(
            epoch=epoch,
            label_tags=self.process.label.tags,
            ilabel_tags=self.process.integrity_label.tags,
            principal=self.process.principal))
        self._synced_epoch = epoch

    # -- statement API -------------------------------------------------------
    def execute(self, sql: str, params: Sequence = ()):
        self._sync_label()
        self.stats.statements_sent += 1
        self.stats.record(StatementMessage(sql=sql, n_params=len(params)))
        result = self.session.execute(sql, params)
        self.stats.results_received += 1
        self.stats.record(ResultMessage(rowcount=result.rowcount))
        # The server may change the label too (stored procedures); the
        # response piggybacks it back, which resynchronizes the epoch.
        self._synced_epoch = self.process.label_epoch
        return result

    def query(self, sql: str, params: Sequence = ()):
        return self.execute(sql, params).rows

    def call(self, procedure: str, *args):
        self._sync_label()
        self.stats.statements_sent += 1
        result = self.session.call(procedure, *args)
        self.stats.results_received += 1
        self._synced_epoch = self.process.label_epoch
        return result

    def begin(self, isolation: Optional[str] = None) -> None:
        self.execute("BEGIN" if isolation is None else
                     "BEGIN ISOLATION LEVEL %s" % isolation.upper())

    def commit(self) -> None:
        self.execute("COMMIT")

    def rollback(self) -> None:
        self.execute("ROLLBACK")

    def close(self) -> None:
        self.session.close()
