"""Closed-loop load generation in virtual time (TPC-W methodology).

The paper measures "the maximum sustained throughput ... subject to the
constraint that the 90th percentile response time stays under 3 seconds"
(section 8.2.1).  Reproducing that against a pure-Python engine on one
machine needs a *model* of the deployment: several weak web servers in
front of one database server.

This module implements a discrete-event simulation of a closed
two-station queueing network:

* ``clients`` closed-loop users: think → web tier → database → think…
* the **web tier** has ``n_web_servers`` servers, each processing one
  request at a time (Apache+PHP worker pools, CPU-bound);
* the **database** is one station with ``db_concurrency`` service slots
  (the paper's 16-core, disk-limited server).

Per-request service demands (seconds of web CPU and of database time)
are *measured* from the real handler implementations by
:mod:`repro.bench.harness`, so the IFDB-vs-baseline difference in the
simulation comes from actually executing both systems' code, not from
assumed constants.

Everything runs in virtual time with *per-worker* seeded RNGs: client
``i`` draws its stagger, request types, and think times from its own
``Random`` seeded by ``(seed, i)``.  Each client therefore replays an
identical request sequence regardless of how the stations interleave
events, so results are exactly reproducible, independent of the host
machine's load, and — crucially for before/after engine comparisons —
the offered workload does not shift when measured service demands
change.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .cartel_mix import sample_request, sample_session_length, \
    sample_think_time


@dataclass(frozen=True)
class ServiceDemand:
    """Seconds of web-tier CPU and database time for one request type."""

    web: float
    db: float


@dataclass
class SimResult:
    throughput: float          # completed web interactions per second
    p90_response: float
    mean_response: float
    completed: int
    clients: int


class _Station:
    """A multi-server FIFO station in the event simulation."""

    def __init__(self, servers: int):
        self.servers = servers
        self.busy = 0
        self.queue: List[Tuple[float, int]] = []   # (enqueue time, job id)


class ClosedLoopSimulator:
    """Closed-network simulation driving the Figure 4 experiment."""

    def __init__(self, demands: Dict[str, ServiceDemand], *,
                 n_web_servers: int = 1, db_concurrency: int = 8,
                 seed: int = 0,
                 request_sampler: Optional[Callable] = None):
        self.demands = demands
        self.n_web_servers = n_web_servers
        self.db_concurrency = db_concurrency
        self.seed = seed
        self.request_sampler = request_sampler or sample_request

    def _client_rng(self, client: int) -> random.Random:
        """The per-worker RNG: deterministic in (seed, client) only."""
        return random.Random((self.seed << 20) ^ (client * 0x9E3779B1))

    def run(self, clients: int, duration: float,
            warmup_fraction: float = 0.2) -> SimResult:
        rngs = [self._client_rng(client) for client in range(clients)]
        events: List[Tuple[float, int, str, tuple]] = []
        counter = 0

        def push(time: float, kind: str, payload: tuple) -> None:
            nonlocal counter
            counter += 1
            heapq.heappush(events, (time, counter, kind, payload))

        web = _Station(self.n_web_servers)
        dbs = _Station(self.db_concurrency)
        responses: List[Tuple[float, float]] = []   # (finish time, rt)

        # Each client starts with an initial stagger so the network does
        # not phase-lock.
        for client in range(clients):
            push(rngs[client].uniform(0, 5.0), "arrive", (client,))

        warmup_end = duration * warmup_fraction

        def start_web(now: float, client: int, t0: float) -> None:
            path = self.request_sampler(rngs[client])
            demand = self.demands[path]
            if web.busy < web.servers:
                web.busy += 1
                push(now + demand.web, "web_done", (client, t0, demand))
            else:
                web.queue.append((now, (client, t0, demand)))

        def start_db(now: float, payload) -> None:
            client, t0, demand = payload
            if dbs.busy < dbs.servers:
                dbs.busy += 1
                push(now + demand.db, "db_done", (client, t0))
            else:
                dbs.queue.append((now, payload))

        while events:
            now, _seq, kind, payload = heapq.heappop(events)
            if now > duration:
                break
            if kind == "arrive":
                client = payload[0]
                start_web(now, client, now)
            elif kind == "web_done":
                client, t0, demand = payload
                web.busy -= 1
                if web.queue:
                    _enq, queued = web.queue.pop(0)
                    web.busy += 1
                    q_client, q_t0, q_demand = queued
                    push(now + q_demand.web, "web_done", queued)
                start_db(now, (client, t0, demand))
            elif kind == "db_done":
                client, t0 = payload
                dbs.busy -= 1
                if dbs.queue:
                    _enq, queued = dbs.queue.pop(0)
                    dbs.busy += 1
                    push(now + queued[2].db, "db_done",
                         (queued[0], queued[1]))
                if now >= warmup_end:
                    responses.append((now, now - t0))
                push(now + sample_think_time(rngs[client]), "arrive",
                     (client,))

        window = duration - warmup_end
        if not responses or window <= 0:
            return SimResult(0.0, float("inf"), float("inf"), 0, clients)
        rts = sorted(rt for _t, rt in responses)
        p90 = rts[min(len(rts) - 1, int(0.9 * len(rts)))]
        mean = sum(rts) / len(rts)
        return SimResult(len(responses) / window, p90, mean,
                         len(responses), clients)

    def peak_throughput(self, *, max_p90: float = 3.0,
                        duration: float = 2000.0,
                        max_clients: int = 20000) -> SimResult:
        """The TPC-W criterion: peak WIPS with p90 under ``max_p90``.

        Grows the client population geometrically until the constraint
        breaks, then bisects.
        """
        low, best = 1, None
        clients = 4
        while clients <= max_clients:
            result = self.run(clients, duration)
            if result.p90_response <= max_p90:
                best = result
                low = clients
                clients *= 2
            else:
                break
        else:
            return best if best is not None else self.run(max_clients,
                                                          duration)
        high = clients
        while high - low > max(1, low // 16):
            mid = (low + high) // 2
            result = self.run(mid, duration)
            if result.p90_response <= max_p90:
                best = result
                low = mid
            else:
                high = mid
        return best if best is not None else self.run(1, duration)
