"""TPC-C workload (the DBT-2-derived benchmark of section 8.3).

Implements the five TPC-C transaction profiles — New-Order, Payment,
Order-Status, Delivery, Stock-Level — with the standard 45/43/4/4/4 mix,
zero think time, and a fixed warehouse count, matching the paper's
methodology ("Unlike TPC-C, we set the think time of simulated clients
to zero and held the number of warehouses constant").

Scale is configurable because the substrate is a pure-Python engine: the
default loads are far below the spec's 100 000 items and 3 000 customers
per district, but every table, index, and transaction step is present,
so label overhead shows up on the same code paths.

The IFDB angle (Figure 6): ``tags_per_label`` attaches that many tags to
every tuple written and to the driver's process label, making tuples
4 bytes/tag bigger and every visibility check a real label comparison.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.labels import Label
from ..core.process import IFCProcess
from ..db.engine import Database
from ..errors import SerializationError

SCHEMA_SQL = """
CREATE TABLE Warehouse (
    w_id INT PRIMARY KEY,
    w_name TEXT, w_street TEXT, w_city TEXT, w_state TEXT, w_zip TEXT,
    w_tax REAL NOT NULL,
    w_ytd REAL NOT NULL
);
CREATE TABLE District (
    d_w_id INT NOT NULL REFERENCES Warehouse(w_id),
    d_id INT NOT NULL,
    d_name TEXT, d_street TEXT, d_city TEXT, d_state TEXT, d_zip TEXT,
    d_tax REAL NOT NULL,
    d_ytd REAL NOT NULL,
    d_next_o_id INT NOT NULL,
    PRIMARY KEY (d_w_id, d_id)
);
CREATE TABLE Customer (
    c_w_id INT NOT NULL,
    c_d_id INT NOT NULL,
    c_id INT NOT NULL,
    c_first TEXT, c_middle TEXT, c_last TEXT,
    c_street TEXT, c_city TEXT, c_state TEXT, c_zip TEXT, c_phone TEXT,
    c_since TIMESTAMP,
    c_credit TEXT,
    c_credit_lim REAL,
    c_discount REAL NOT NULL,
    c_balance REAL NOT NULL,
    c_ytd_payment REAL NOT NULL,
    c_payment_cnt INT NOT NULL,
    c_delivery_cnt INT NOT NULL,
    c_data TEXT,
    PRIMARY KEY (c_w_id, c_d_id, c_id)
);
CREATE TABLE History (
    h_id INT PRIMARY KEY,
    h_c_id INT, h_c_d_id INT, h_c_w_id INT,
    h_d_id INT, h_w_id INT,
    h_date TIMESTAMP,
    h_amount REAL,
    h_data TEXT
);
CREATE TABLE NewOrder (
    no_w_id INT NOT NULL,
    no_d_id INT NOT NULL,
    no_o_id INT NOT NULL,
    PRIMARY KEY (no_w_id, no_d_id, no_o_id)
);
CREATE TABLE Orders (
    o_w_id INT NOT NULL,
    o_d_id INT NOT NULL,
    o_id INT NOT NULL,
    o_c_id INT NOT NULL,
    o_entry_d TIMESTAMP,
    o_carrier_id INT,
    o_ol_cnt INT NOT NULL,
    o_all_local INT NOT NULL,
    PRIMARY KEY (o_w_id, o_d_id, o_id)
);
CREATE TABLE OrderLine (
    ol_w_id INT NOT NULL,
    ol_d_id INT NOT NULL,
    ol_o_id INT NOT NULL,
    ol_number INT NOT NULL,
    ol_i_id INT NOT NULL,
    ol_supply_w_id INT,
    ol_delivery_d TIMESTAMP,
    ol_quantity INT NOT NULL,
    ol_amount REAL NOT NULL,
    ol_dist_info TEXT,
    PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number)
);
CREATE TABLE Item (
    i_id INT PRIMARY KEY,
    i_im_id INT,
    i_name TEXT,
    i_price REAL NOT NULL,
    i_data TEXT
);
CREATE TABLE Stock (
    s_w_id INT NOT NULL,
    s_i_id INT NOT NULL,
    s_quantity INT NOT NULL,
    s_dist TEXT,
    s_ytd REAL NOT NULL,
    s_order_cnt INT NOT NULL,
    s_remote_cnt INT NOT NULL,
    s_data TEXT,
    PRIMARY KEY (s_w_id, s_i_id)
);
CREATE ORDERED INDEX customer_by_name ON Customer (c_w_id, c_d_id, c_last);
CREATE ORDERED INDEX orders_by_customer ON Orders (o_w_id, o_d_id, o_c_id, o_id);
CREATE ORDERED INDEX neworder_by_district ON NewOrder (no_w_id, no_d_id, no_o_id);
CREATE ORDERED INDEX orderline_by_order ON OrderLine (ol_w_id, ol_d_id, ol_o_id, ol_number);
"""

#: The standard TPC-C transaction mix.
MIX = (
    ("new_order", 0.45),
    ("payment", 0.43),
    ("order_status", 0.04),
    ("delivery", 0.04),
    ("stock_level", 0.04),
)

_LAST_NAMES = ("BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI",
               "CALLY", "ATION", "EING")


def customer_last_name(number: int) -> str:
    """TPC-C last-name generation from a three-digit number."""
    return (_LAST_NAMES[(number // 100) % 10]
            + _LAST_NAMES[(number // 10) % 10]
            + _LAST_NAMES[number % 10])


@dataclass
class TPCCConfig:
    """Scale parameters (defaults are laptop-scale, structure-complete)."""

    warehouses: int = 2
    districts_per_warehouse: int = 4
    customers_per_district: int = 30
    items: int = 200
    initial_orders_per_district: int = 15
    seed: int = 42
    tags_per_label: int = 0


@dataclass
class TPCCStats:
    transactions: Dict[str, int] = field(default_factory=dict)
    new_order_commits: int = 0
    rollbacks: int = 0
    serialization_aborts: int = 0

    def bump(self, kind: str) -> None:
        self.transactions[kind] = self.transactions.get(kind, 0) + 1


class TPCCWorkload:
    """Loader and driver for the TPC-C-derived benchmark."""

    def __init__(self, db: Database, config: Optional[TPCCConfig] = None):
        self.db = db
        self.config = config or TPCCConfig()
        self.rng = random.Random(self.config.seed)
        self.stats = TPCCStats()
        authority = db.authority
        self._driver = authority.create_principal("tpcc-driver")
        self._tags = [
            authority.create_tag("tpcc-tag-%d" % i, owner=self._driver.id)
            for i in range(self.config.tags_per_label)
        ]
        self.label = Label(t.id for t in self._tags)
        self.process = IFCProcess(authority, self._driver.id)
        for tag in self._tags:
            self.process.add_secrecy(tag.id)
        self.session = db.connect(self.process)

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load(self) -> None:
        """Create the schema and populate every table."""
        cfg = self.config
        rng = self.rng
        session = self.session
        session.execute_script(SCHEMA_SQL)
        session.begin()
        for i_id in range(1, cfg.items + 1):
            session.insert("Item", i_id=i_id, i_im_id=rng.randint(1, 10000),
                           i_name="item-%d" % i_id,
                           i_price=round(rng.uniform(1.0, 100.0), 2),
                           i_data="data-%d" % rng.randint(0, 9999))
        for w_id in range(1, cfg.warehouses + 1):
            session.insert("Warehouse", w_id=w_id, w_name="W%d" % w_id,
                           w_street="1 Main", w_city="Boston", w_state="MA",
                           w_zip="02139", w_tax=round(rng.uniform(0, 0.2), 4),
                           w_ytd=300000.0)
            for i_id in range(1, cfg.items + 1):
                session.insert("Stock", s_w_id=w_id, s_i_id=i_id,
                               s_quantity=rng.randint(10, 100),
                               s_dist="dist-%02d" % rng.randint(1, 10),
                               s_ytd=0.0, s_order_cnt=0, s_remote_cnt=0,
                               s_data="stock-%d" % rng.randint(0, 9999))
            for d_id in range(1, cfg.districts_per_warehouse + 1):
                session.insert("District", d_w_id=w_id, d_id=d_id,
                               d_name="D%d" % d_id, d_street="2 Side",
                               d_city="Boston", d_state="MA", d_zip="02139",
                               d_tax=round(rng.uniform(0, 0.2), 4),
                               d_ytd=30000.0,
                               d_next_o_id=cfg.initial_orders_per_district + 1)
                self._load_customers(w_id, d_id)
                self._load_orders(w_id, d_id)
        session.commit()
        # Collect optimizer statistics over the freshly loaded tables so
        # the cost model plans the transaction mix from real cardinalities.
        self.db.analyze()

    def _load_customers(self, w_id: int, d_id: int) -> None:
        cfg = self.config
        rng = self.rng
        for c_id in range(1, cfg.customers_per_district + 1):
            last = customer_last_name(
                c_id - 1 if c_id <= 100 else rng.randint(0, 999))
            self.session.insert(
                "Customer", c_w_id=w_id, c_d_id=d_id, c_id=c_id,
                c_first="first-%d" % c_id, c_middle="OE", c_last=last,
                c_street="3 Elm", c_city="Boston", c_state="MA",
                c_zip="02139", c_phone="617-555-0000", c_since=0.0,
                c_credit="GC" if rng.random() < 0.9 else "BC",
                c_credit_lim=50000.0,
                c_discount=round(rng.uniform(0, 0.5), 4),
                c_balance=-10.0, c_ytd_payment=10.0, c_payment_cnt=1,
                c_delivery_cnt=0, c_data="customer-data")

    def _load_orders(self, w_id: int, d_id: int) -> None:
        cfg = self.config
        rng = self.rng
        for o_id in range(1, cfg.initial_orders_per_district + 1):
            c_id = rng.randint(1, cfg.customers_per_district)
            ol_cnt = rng.randint(5, 15)
            delivered = o_id <= cfg.initial_orders_per_district * 2 // 3
            self.session.insert(
                "Orders", o_w_id=w_id, o_d_id=d_id, o_id=o_id, o_c_id=c_id,
                o_entry_d=0.0,
                o_carrier_id=rng.randint(1, 10) if delivered else None,
                o_ol_cnt=ol_cnt, o_all_local=1)
            for number in range(1, ol_cnt + 1):
                self.session.insert(
                    "OrderLine", ol_w_id=w_id, ol_d_id=d_id, ol_o_id=o_id,
                    ol_number=number, ol_i_id=rng.randint(1, cfg.items),
                    ol_supply_w_id=w_id,
                    ol_delivery_d=0.0 if delivered else None,
                    ol_quantity=5,
                    ol_amount=0.0 if delivered else
                    round(rng.uniform(0.01, 9999.99), 2),
                    ol_dist_info="dist-info")
            if not delivered:
                self.session.insert("NewOrder", no_w_id=w_id, no_d_id=d_id,
                                    no_o_id=o_id)

    # ------------------------------------------------------------------
    # transaction profiles
    # ------------------------------------------------------------------
    def run_one(self, kind: Optional[str] = None) -> str:
        """Execute one transaction of the given (or mix-sampled) type."""
        if kind is None:
            kind = self._sample_mix()
        fn = getattr(self, "txn_" + kind)
        try:
            fn()
            self.stats.bump(kind)
        except SerializationError:
            self.stats.serialization_aborts += 1
            if self.session.transaction is not None:
                self.session.rollback()
        return kind

    def run(self, n_transactions: int) -> TPCCStats:
        for _ in range(n_transactions):
            self.run_one()
        return self.stats

    def _sample_mix(self) -> str:
        roll = self.rng.random()
        acc = 0.0
        for kind, weight in MIX:
            acc += weight
            if roll < acc:
                return kind
        return MIX[-1][0]

    def _random_customer(self):
        cfg = self.config
        return (self.rng.randint(1, cfg.warehouses),
                self.rng.randint(1, cfg.districts_per_warehouse),
                self.rng.randint(1, cfg.customers_per_district))

    # -- New-Order (45%) -------------------------------------------------
    def txn_new_order(self) -> None:
        cfg = self.config
        rng = self.rng
        session = self.session
        w_id = rng.randint(1, cfg.warehouses)
        d_id = rng.randint(1, cfg.districts_per_warehouse)
        c_id = rng.randint(1, cfg.customers_per_district)
        ol_cnt = rng.randint(5, 15)
        # TPC-C: 1% of new-order transactions roll back on a bad item.
        bad_item = rng.random() < 0.01
        session.begin()
        try:
            warehouse = session.execute(
                "SELECT w_tax FROM Warehouse WHERE w_id = ?",
                (w_id,)).first()
            district = session.execute(
                "SELECT d_tax, d_next_o_id FROM District "
                "WHERE d_w_id = ? AND d_id = ?", (w_id, d_id)).first()
            o_id = district["d_next_o_id"]
            session.execute(
                "UPDATE District SET d_next_o_id = ? "
                "WHERE d_w_id = ? AND d_id = ?", (o_id + 1, w_id, d_id))
            customer = session.execute(
                "SELECT c_discount, c_last, c_credit FROM Customer "
                "WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
                (w_id, d_id, c_id)).first()
            session.execute(
                "INSERT INTO Orders (o_w_id, o_d_id, o_id, o_c_id, "
                "o_entry_d, o_carrier_id, o_ol_cnt, o_all_local) "
                "VALUES (?, ?, ?, ?, ?, NULL, ?, 1)",
                (w_id, d_id, o_id, c_id, self.db.clock(), ol_cnt))
            session.execute(
                "INSERT INTO NewOrder (no_w_id, no_d_id, no_o_id) "
                "VALUES (?, ?, ?)", (w_id, d_id, o_id))
            total = 0.0
            for number in range(1, ol_cnt + 1):
                if bad_item and number == ol_cnt:
                    raise _Rollback()
                i_id = rng.randint(1, cfg.items)
                item = session.execute(
                    "SELECT i_price FROM Item WHERE i_id = ?",
                    (i_id,)).first()
                stock = session.execute(
                    "SELECT s_quantity, s_ytd, s_order_cnt FROM Stock "
                    "WHERE s_w_id = ? AND s_i_id = ?", (w_id, i_id)).first()
                quantity = rng.randint(1, 10)
                new_quantity = stock["s_quantity"] - quantity
                if new_quantity < 10:
                    new_quantity += 91
                session.execute(
                    "UPDATE Stock SET s_quantity = ?, s_ytd = s_ytd + ?, "
                    "s_order_cnt = s_order_cnt + 1 "
                    "WHERE s_w_id = ? AND s_i_id = ?",
                    (new_quantity, quantity, w_id, i_id))
                amount = quantity * item["i_price"]
                total += amount
                session.execute(
                    "INSERT INTO OrderLine (ol_w_id, ol_d_id, ol_o_id, "
                    "ol_number, ol_i_id, ol_supply_w_id, ol_delivery_d, "
                    "ol_quantity, ol_amount, ol_dist_info) "
                    "VALUES (?, ?, ?, ?, ?, ?, NULL, ?, ?, 'info')",
                    (w_id, d_id, o_id, number, i_id, w_id, quantity, amount))
            total *= (1 - customer["c_discount"]) * \
                (1 + warehouse["w_tax"] + district["d_tax"])
            session.commit()
            self.stats.new_order_commits += 1
        except _Rollback:
            session.rollback()
            self.stats.rollbacks += 1

    # -- Payment (43%) ----------------------------------------------------
    def txn_payment(self) -> None:
        rng = self.rng
        session = self.session
        w_id, d_id, c_id = self._random_customer()
        amount = round(rng.uniform(1.0, 5000.0), 2)
        by_name = rng.random() < 0.4
        session.begin()
        session.execute(
            "UPDATE Warehouse SET w_ytd = w_ytd + ? WHERE w_id = ?",
            (amount, w_id))
        session.execute(
            "UPDATE District SET d_ytd = d_ytd + ? "
            "WHERE d_w_id = ? AND d_id = ?", (amount, w_id, d_id))
        if by_name:
            last = customer_last_name(rng.randint(0, 99))
            rows = session.query(
                "SELECT c_id FROM Customer WHERE c_w_id = ? AND c_d_id = ? "
                "AND c_last = ? ORDER BY c_first", (w_id, d_id, last))
            if rows:
                c_id = rows[len(rows) // 2][0]
        session.execute(
            "UPDATE Customer SET c_balance = c_balance - ?, "
            "c_ytd_payment = c_ytd_payment + ?, "
            "c_payment_cnt = c_payment_cnt + 1 "
            "WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
            (amount, amount, w_id, d_id, c_id))
        session.execute(
            "INSERT INTO History (h_id, h_c_id, h_c_d_id, h_c_w_id, h_d_id, "
            "h_w_id, h_date, h_amount, h_data) VALUES (?,?,?,?,?,?,?,?,?)",
            (self.db.next_sequence("history"), c_id, d_id, w_id, d_id, w_id,
             self.db.clock(), amount, "payment"))
        session.commit()

    # -- Order-Status (4%) -------------------------------------------------
    def txn_order_status(self) -> None:
        session = self.session
        w_id, d_id, c_id = self._random_customer()
        session.begin()
        session.execute(
            "SELECT c_balance, c_first, c_middle, c_last FROM Customer "
            "WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
            (w_id, d_id, c_id))
        order = session.execute(
            "SELECT o_id, o_entry_d, o_carrier_id FROM Orders "
            "WHERE o_w_id = ? AND o_d_id = ? AND o_c_id = ? "
            "ORDER BY o_id DESC LIMIT 1", (w_id, d_id, c_id)).first()
        if order is not None:
            session.query(
                "SELECT ol_i_id, ol_quantity, ol_amount, ol_delivery_d "
                "FROM OrderLine WHERE ol_w_id = ? AND ol_d_id = ? "
                "AND ol_o_id = ?", (w_id, d_id, order["o_id"]))
        session.commit()

    # -- Delivery (4%) -----------------------------------------------------
    def txn_delivery(self) -> None:
        cfg = self.config
        session = self.session
        w_id = self.rng.randint(1, cfg.warehouses)
        carrier = self.rng.randint(1, 10)
        session.begin()
        for d_id in range(1, cfg.districts_per_warehouse + 1):
            oldest = session.execute(
                "SELECT no_o_id FROM NewOrder WHERE no_w_id = ? "
                "AND no_d_id = ? ORDER BY no_o_id LIMIT 1",
                (w_id, d_id)).first()
            if oldest is None:
                continue
            o_id = oldest[0]
            # Range-form consumption of the queue head (o_id is the
            # minimum, so "<= o_id" deletes exactly that order): the
            # DML planner serves the bound from neworder_by_district's
            # ordered index instead of probing the equality prefix and
            # filtering the district's whole pending queue.
            session.execute(
                "DELETE FROM NewOrder WHERE no_w_id = ? AND no_d_id = ? "
                "AND no_o_id <= ?", (w_id, d_id, o_id))
            order = session.execute(
                "SELECT o_c_id FROM Orders WHERE o_w_id = ? AND o_d_id = ? "
                "AND o_id = ?", (w_id, d_id, o_id)).first()
            session.execute(
                "UPDATE Orders SET o_carrier_id = ? WHERE o_w_id = ? "
                "AND o_d_id = ? AND o_id = ?", (carrier, w_id, d_id, o_id))
            session.execute(
                "UPDATE OrderLine SET ol_delivery_d = ? WHERE ol_w_id = ? "
                "AND ol_d_id = ? AND ol_o_id = ?",
                (self.db.clock(), w_id, d_id, o_id))
            total = session.execute(
                "SELECT SUM(ol_amount) FROM OrderLine WHERE ol_w_id = ? "
                "AND ol_d_id = ? AND ol_o_id = ?",
                (w_id, d_id, o_id)).scalar() or 0.0
            session.execute(
                "UPDATE Customer SET c_balance = c_balance + ?, "
                "c_delivery_cnt = c_delivery_cnt + 1 "
                "WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
                (total, w_id, d_id, order["o_c_id"]))
        session.commit()

    # -- Stock-Level (4%) ---------------------------------------------------
    def txn_stock_level(self) -> None:
        cfg = self.config
        session = self.session
        w_id = self.rng.randint(1, cfg.warehouses)
        d_id = self.rng.randint(1, cfg.districts_per_warehouse)
        threshold = self.rng.randint(10, 20)
        session.begin()
        next_o_id = session.execute(
            "SELECT d_next_o_id FROM District WHERE d_w_id = ? "
            "AND d_id = ?", (w_id, d_id)).scalar()
        session.execute(
            "SELECT COUNT(DISTINCT s.s_i_id) FROM OrderLine ol "
            "JOIN Stock s ON s.s_w_id = ol.ol_w_id AND s.s_i_id = ol.ol_i_id "
            "WHERE ol.ol_w_id = ? AND ol.ol_d_id = ? "
            "AND ol.ol_o_id >= ? AND ol.ol_o_id < ? AND s.s_quantity < ?",
            (w_id, d_id, max(1, next_o_id - 20), next_o_id, threshold))
        session.commit()


class _Rollback(Exception):
    """Internal: the deliberate 1% New-Order rollback."""
