"""The CarTel web benchmark request mix (Figure 3) and the TPC-W-style
client behaviour model (section 8.2.1).

* Requests follow the Figure 3 distribution (login excluded).
* Think times: truncated negative exponential on [0, 70] seconds.
* Session lengths: truncated negative exponential, up to ~60 minutes.
"""

from __future__ import annotations

import random
from typing import List, Tuple

#: Figure 3 — distribution of HTTP requests (excluding login).
REQUEST_MIX: Tuple[Tuple[str, float], ...] = (
    ("/get_cars.php", 0.50),
    ("/cars.php", 0.30),
    ("/drives.php", 0.08),
    ("/drives_top.php", 0.08),
    ("/friends.php", 0.03),
    ("/edit_account.php", 0.01),
)

#: TPC-W think-time parameters (section 8.2.1).
THINK_TIME_MAX = 70.0
THINK_TIME_MEAN = 7.0
SESSION_MAX = 3600.0          # "up to about 60 minutes"
SESSION_MEAN = 900.0


def sample_request(rng: random.Random) -> str:
    """Draw one request path from the Figure 3 distribution."""
    roll = rng.random()
    acc = 0.0
    for path, weight in REQUEST_MIX:
        acc += weight
        if roll < acc:
            return path
    return REQUEST_MIX[-1][0]


def sample_think_time(rng: random.Random) -> float:
    """Truncated negative exponential on [0, THINK_TIME_MAX]."""
    while True:
        value = rng.expovariate(1.0 / THINK_TIME_MEAN)
        if value <= THINK_TIME_MAX:
            return value


def sample_session_length(rng: random.Random) -> float:
    """Truncated negative exponential session duration (seconds)."""
    while True:
        value = rng.expovariate(1.0 / SESSION_MEAN)
        if value <= SESSION_MAX:
            return value


def empirical_mix(samples: int, seed: int = 0) -> List[Tuple[str, float]]:
    """Sampled request frequencies (used to regenerate Figure 3)."""
    rng = random.Random(seed)
    counts = {path: 0 for path, _ in REQUEST_MIX}
    for _ in range(samples):
        counts[sample_request(rng)] += 1
    return [(path, counts[path] / samples) for path, _ in REQUEST_MIX]
