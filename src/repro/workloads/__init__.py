"""Benchmark workloads: TPC-C (Figure 6), the CarTel request mix
(Figure 3), and the TPC-W-style closed-loop load generator (Figure 4)."""

from .cartel_mix import (
    REQUEST_MIX,
    empirical_mix,
    sample_request,
    sample_session_length,
    sample_think_time,
)
from .loadgen import ClosedLoopSimulator, ServiceDemand, SimResult
from .tpcc import MIX, TPCCConfig, TPCCStats, TPCCWorkload, customer_last_name

__all__ = [
    "ClosedLoopSimulator",
    "MIX",
    "REQUEST_MIX",
    "ServiceDemand",
    "SimResult",
    "TPCCConfig",
    "TPCCStats",
    "TPCCWorkload",
    "customer_last_name",
    "empirical_mix",
    "sample_request",
    "sample_session_length",
    "sample_think_time",
]
