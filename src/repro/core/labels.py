"""Immutable information-flow labels.

A label is a set of tags (section 3.1).  Tuple labels are immutable and
assigned at creation; process labels are replaced wholesale by explicit
operations on :class:`~repro.core.process.IFCProcess`.  ``Label`` is a thin
immutable wrapper over a ``frozenset`` of integer tag ids, hashable so it
can be interned, used as a dict key, and stored unchanged in tuples.

Subset comparisons in the presence of *compound tags* need the authority
state to expand compounds into their member closure, so the comparison
predicates live in :mod:`repro.core.rules` and take the tag registry as an
argument.  The raw set operations here are registry-free.

Labels are *interned*: constructing a label whose tag set was seen
before returns the existing instance, so equal labels are identical
objects.  This makes dict lookups on labels (the memoized ``covers``
cache in :mod:`repro.core.rules`, scan-level visibility checks)
identity-fast, and lets set algebra return ``self`` aggressively.  The
intern table is capped; past the cap, fresh (non-identical but still
equal) instances are handed out, so correctness never depends on
interning.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator

_INTERNED: Dict[FrozenSet[int], "Label"] = {}
_INTERN_CAP = 1 << 20


class Label:
    """An immutable, interned set of tag ids."""

    __slots__ = ("_tags", "_hash")

    def __new__(cls, tags: Iterable[int] = ()):
        tags = tags if type(tags) is frozenset else frozenset(tags)
        existing = _INTERNED.get(tags)
        if existing is not None:
            return existing
        self = super().__new__(cls)
        object.__setattr__(self, "_tags", tags)
        object.__setattr__(self, "_hash", hash(tags))
        if len(_INTERNED) < _INTERN_CAP:
            _INTERNED[tags] = self
        return self

    # -- immutability -------------------------------------------------
    def __setattr__(self, name, value):
        raise AttributeError("Label instances are immutable")

    def __reduce__(self):
        # Rebuild through the constructor so pickling (used by the
        # dump/restore tooling) round-trips through the intern table:
        # an unpickled label is identical to the live one.
        return (Label, (tuple(self._tags),))

    # -- basic protocol -----------------------------------------------
    @property
    def tags(self) -> FrozenSet[int]:
        return self._tags

    def __contains__(self, tag: int) -> bool:
        return tag in self._tags

    def __iter__(self) -> Iterator[int]:
        return iter(self._tags)

    def __len__(self) -> int:
        return len(self._tags)

    def __bool__(self) -> bool:
        return bool(self._tags)

    def __eq__(self, other) -> bool:
        if other is self:
            return True
        if isinstance(other, Label):
            return self._tags == other._tags
        if isinstance(other, (set, frozenset)):
            return self._tags == other
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self._tags:
            return "Label({})"
        inner = ", ".join(str(t) for t in sorted(self._tags))
        return "Label({%s})" % inner

    # -- set algebra (registry-free; see rules.py for compound-aware) --
    def union(self, other: "Label | Iterable[int]") -> "Label":
        """Return a new label containing the tags of both."""
        other_tags = other.tags if isinstance(other, Label) else frozenset(other)
        if other_tags <= self._tags:
            return self
        return Label(self._tags | other_tags)

    def with_tag(self, tag: int) -> "Label":
        """Return a new label with ``tag`` added."""
        if tag in self._tags:
            return self
        return Label(self._tags | {tag})

    def without(self, tags: "Label | Iterable[int]") -> "Label":
        """Return a new label with ``tags`` removed (plain set difference)."""
        other_tags = tags.tags if isinstance(tags, Label) else frozenset(tags)
        if not (other_tags & self._tags):
            return self
        return Label(self._tags - other_tags)

    def intersection(self, other: "Label | Iterable[int]") -> "Label":
        other_tags = other.tags if isinstance(other, Label) else frozenset(other)
        return Label(self._tags & other_tags)

    def issubset(self, other: "Label") -> bool:
        """Plain subset test, ignoring compound-tag expansion."""
        return self._tags <= other.tags

    def byte_size(self) -> int:
        """Storage footprint: 4 bytes per tag (section 8.3), 1 length byte.

        The paper stores the label length in a previously unused header
        byte, so an empty label costs nothing extra; each tag adds four
        bytes to the tuple.
        """
        return 4 * len(self._tags)


#: The empty (public) label.  The outside world has this label (section 3.2).
EMPTY_LABEL = Label()


def as_label(value) -> Label:
    """Coerce ``value`` (Label, iterable of ids, or None) to a Label."""
    if isinstance(value, Label):
        return value
    if value is None:
        return EMPTY_LABEL
    return Label(value)
