"""Tags and compound tags (section 3.1).

A *tag* is an identifier attached to data to denote a secrecy (or
integrity) concern, e.g. ``alice-location``.  A *compound tag* groups tags
so they can be used as a unit, e.g. ``all-locations``; membership is fixed
at tag-creation time (the paper disallows relinking because it would
relabel all covered data).

Tag records are owned by the authority state (:mod:`repro.core.authority`);
this module defines the record type and the membership-closure helper used
to expand compound tags during label comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set, Tuple

from ..errors import UnknownTagError

#: Tag categories.  Secrecy tags contaminate; integrity tags endorse.
SECRECY = "secrecy"
INTEGRITY = "integrity"


@dataclass(frozen=True)
class Tag:
    """A tag record in the authority state.

    ``compounds`` lists the compound tags this tag is a *member of*; it is
    fixed at creation.  A compound tag is an ordinary :class:`Tag` with
    ``is_compound=True``; compounds may themselves be members of larger
    compounds (nesting is allowed, cycles are not).
    """

    id: int
    name: str
    owner: int                      # owning principal id
    kind: str = SECRECY
    is_compound: bool = False
    compounds: FrozenSet[int] = frozenset()


class TagRegistry:
    """Stores tag records and answers compound-membership queries.

    The registry maintains, for every compound tag, the transitive set of
    member tag ids.  This makes the hot-path operation — "expand a label's
    compound tags for a subset check" — a few dict lookups and set unions.
    """

    def __init__(self):
        self._tags: Dict[int, Tag] = {}
        self._by_name: Dict[str, int] = {}
        # compound id -> transitive closure of member tag ids (excluding
        # the compound itself).
        self._members: Dict[int, Set[int]] = {}
        #: Bumped on every registration.  Compound membership is fixed at
        #: tag creation, so the answers of ``expand`` (and anything
        #: memoized over them, see :mod:`repro.core.rules`) can only
        #: change when this counter does.
        self.version = 0

    # -- registration ---------------------------------------------------
    def add(self, tag: Tag) -> None:
        if tag.id in self._tags:
            raise ValueError("duplicate tag id %d" % tag.id)
        if tag.name in self._by_name:
            raise ValueError("duplicate tag name %r" % tag.name)
        for compound_id in tag.compounds:
            parent = self.get(compound_id)
            if not parent.is_compound:
                raise ValueError(
                    "tag %r is not a compound tag; %r cannot be a member"
                    % (parent.name, tag.name))
            if parent.kind != tag.kind:
                raise ValueError("compound and member tags must share a kind")
        self._tags[tag.id] = tag
        self._by_name[tag.name] = tag.id
        if tag.is_compound:
            self._members.setdefault(tag.id, set())
        for compound_id in tag.compounds:
            self._add_member(compound_id, tag.id)
        self.version += 1

    def _add_member(self, compound_id: int, member_id: int) -> None:
        """Record membership and propagate up through nested compounds."""
        new_members = {member_id}
        if member_id in self._members:           # member is itself a compound
            new_members |= self._members[member_id]
        seen: Set[int] = set()
        stack = [compound_id]
        while stack:
            cid = stack.pop()
            if cid in seen:
                continue
            seen.add(cid)
            self._members.setdefault(cid, set()).update(new_members)
            stack.extend(self._tags[cid].compounds)

    # -- queries ----------------------------------------------------------
    def get(self, tag_id: int) -> Tag:
        try:
            return self._tags[tag_id]
        except KeyError:
            raise UnknownTagError("no tag with id %d" % tag_id) from None

    def lookup(self, name: str) -> Tag:
        try:
            return self._tags[self._by_name[name]]
        except KeyError:
            raise UnknownTagError("no tag named %r" % name) from None

    def __contains__(self, tag_id: int) -> bool:
        return tag_id in self._tags

    def __len__(self) -> int:
        return len(self._tags)

    def names(self, tag_ids) -> Tuple[str, ...]:
        """Human-readable names for a collection of tag ids (sorted)."""
        return tuple(sorted(self.get(t).name for t in tag_ids))

    def members_of(self, compound_id: int) -> FrozenSet[int]:
        """Transitive member tags of a compound (empty for plain tags)."""
        return frozenset(self._members.get(compound_id, ()))

    def compounds_of(self, tag_id: int) -> FrozenSet[int]:
        """All compounds that (transitively) contain ``tag_id``."""
        result: Set[int] = set()
        stack = list(self.get(tag_id).compounds)
        while stack:
            cid = stack.pop()
            if cid in result:
                continue
            result.add(cid)
            stack.extend(self._tags[cid].compounds)
        return frozenset(result)

    def expand(self, tag_ids) -> FrozenSet[int]:
        """Expand compound tags into themselves plus their member closure.

        Used for label comparisons: a label containing ``all_drives``
        covers data labelled ``alice_drives`` (section 3.1, 8.3).
        """
        result: Set[int] = set()
        for tag_id in tag_ids:
            result.add(tag_id)
            members = self._members.get(tag_id)
            if members:
                result |= members
        return frozenset(result)

    def all_tags(self):
        """Iterate over every registered tag record."""
        return self._tags.values()
