"""The authority state (sections 3.2–3.3).

The authority state records principals, tags, and delegations.  It is
itself an object with an *empty label*: mutations that could act as a
covert channel (delegation and revocation) require the calling process to
have an empty label, which is enforced by :class:`~repro.core.process.IFCProcess`
passing itself to the mutators.

Authority model:

* every tag has an *owner* principal with complete authority over it;
* authority can be *delegated*: a principal with authority for a tag may
  grant it to another principal, and may later *revoke* its own grant;
* revocation is transitive — authority holds only while the grantee is
  reachable from the owner through live delegation edges;
* authority for a *compound* tag implies authority for every member tag
  (transitively), because declassifying the compound declassifies them.

The state carries a monotonically increasing ``version`` so that caches
(the platform's authority cache, section 7.2) can invalidate cheaply.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from ..errors import AuthorityError, IFCViolation, UnknownTagError
from .idgen import IdGenerator
from .labels import Label
from .principals import Principal, PrincipalRegistry
from .tags import INTEGRITY, SECRECY, Tag, TagRegistry


class AuthorityState:
    """Principals, tags, compound membership, and the delegation graph."""

    def __init__(self, idgen: Optional[IdGenerator] = None):
        self.tags = TagRegistry()
        self.principals = PrincipalRegistry()
        self._idgen = idgen or IdGenerator()
        self._used_ids: Set[int] = set()
        # (tag_id) -> {grantee_id -> set of grantor_ids}
        self._grants: Dict[int, Dict[int, Set[int]]] = {}
        self.version = 0
        # The distinguished "system" principal bootstraps the state; it is
        # the analogue of the platform's root of trust, not the DBA (the
        # DBA deliberately has no declassification authority, section 3.3).
        self.system = self._new_principal("system")

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _fresh_id(self) -> int:
        new_id = self._idgen.next_id(self._used_ids)
        self._used_ids.add(new_id)
        return new_id

    def _bump(self) -> None:
        self.version += 1

    def _new_principal(self, name: str) -> Principal:
        principal = Principal(id=self._fresh_id(), name=name)
        self.principals.add(principal)
        self._bump()
        return principal

    @staticmethod
    def _require_empty_label(process) -> None:
        if process is not None and len(process.label) > 0:
            raise IFCViolation(
                "the authority state has an empty label; a process with a "
                "non-empty label (%r) cannot modify it" % (process.label,))

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------
    def create_principal(self, name: str) -> Principal:
        """Create a new principal.  Ids come from the CSPRNG (section 7.3)."""
        principal = self._new_principal(name)
        return principal

    def create_tag(self, name: str, owner: int, *,
                   compounds: Iterable[int] = (),
                   kind: str = SECRECY,
                   creator: Optional[int] = None) -> Tag:
        """Create a tag owned by ``owner``; membership is fixed forever.

        Any principal can create a tag and becomes its owner (section 3.2).
        Linking into a compound requires the *creator* (defaults to the
        owner) to have authority for the compound — otherwise an attacker
        could smuggle a tag under someone else's declassification
        umbrella.  Trusted setup code typically owns the compounds and
        creates user tags with ``owner=user`` (section 6.4's authority
        schema instantiation).
        """
        self.principals.get(owner)
        acting = owner if creator is None else creator
        compound_ids = tuple(compounds)
        for compound_id in compound_ids:
            if not self.has_authority(acting, compound_id):
                raise AuthorityError(
                    "principal %d lacks authority for compound tag %d and so "
                    "cannot add members to it" % (acting, compound_id))
        tag = Tag(id=self._fresh_id(), name=name, owner=owner, kind=kind,
                  compounds=frozenset(compound_ids))
        self.tags.add(tag)
        self._bump()
        return tag

    def create_compound_tag(self, name: str, owner: int, *,
                            compounds: Iterable[int] = (),
                            kind: str = SECRECY,
                            creator: Optional[int] = None) -> Tag:
        """Create a compound tag (a group usable as a unit, section 3.1)."""
        self.principals.get(owner)
        acting = owner if creator is None else creator
        compound_ids = tuple(compounds)
        for compound_id in compound_ids:
            if not self.has_authority(acting, compound_id):
                raise AuthorityError(
                    "principal %d lacks authority for compound tag %d"
                    % (acting, compound_id))
        tag = Tag(id=self._fresh_id(), name=name, owner=owner, kind=kind,
                  is_compound=True, compounds=frozenset(compound_ids))
        self.tags.add(tag)
        self._bump()
        return tag

    # ------------------------------------------------------------------
    # delegation and revocation
    # ------------------------------------------------------------------
    def delegate(self, tag_id: int, grantor: int, grantee: int,
                 *, process=None) -> None:
        """Grant ``grantee`` authority for ``tag_id`` on behalf of ``grantor``.

        The grantor must itself have authority.  If ``process`` is given it
        must have an empty label (the authority state's label), preventing
        contaminated processes from using delegations as a covert channel.
        """
        self._require_empty_label(process)
        self.tags.get(tag_id)
        self.principals.get(grantor)
        self.principals.get(grantee)
        if not self.has_authority(grantor, tag_id):
            raise AuthorityError(
                "principal %d has no authority for tag %d to delegate"
                % (grantor, tag_id))
        grantors = self._grants.setdefault(tag_id, {}).setdefault(grantee, set())
        grantors.add(grantor)
        self._bump()

    def revoke(self, tag_id: int, grantor: int, grantee: int,
               *, process=None) -> None:
        """Remove a previously made delegation.

        Only the edge (grantor → grantee) is removed; whether the grantee
        retains authority depends on whether another live path from the
        owner remains.  Requires an empty process label, like delegation.
        """
        self._require_empty_label(process)
        grantors = self._grants.get(tag_id, {}).get(grantee)
        if not grantors or grantor not in grantors:
            raise AuthorityError(
                "no delegation of tag %d from %d to %d" % (tag_id, grantor,
                                                           grantee))
        grantors.discard(grantor)
        if not grantors:
            del self._grants[tag_id][grantee]
        self._bump()

    # ------------------------------------------------------------------
    # authority queries
    # ------------------------------------------------------------------
    def _has_direct_authority(self, principal_id: int, tag_id: int) -> bool:
        """Authority for exactly this tag: ownership or a live delegation
        chain from the owner."""
        tag = self.tags.get(tag_id)
        if tag.owner == principal_id:
            return True
        grants = self._grants.get(tag_id)
        if not grants:
            return False
        # Authority holds iff principal_id is reachable from the owner in
        # the reversed grant graph.  Walk backwards from the principal
        # towards the owner (graphs are tiny in practice).
        seen: Set[int] = set()
        stack = [principal_id]
        while stack:
            current = stack.pop()
            if current == tag.owner:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(grants.get(current, ()))
        return False

    def has_authority(self, principal_id: int, tag_id: int) -> bool:
        """True if the principal can declassify ``tag_id``.

        Holds directly, or via any compound tag that contains it: being
        able to declassify ``all_contacts`` implies being able to
        declassify ``cathy_contact`` (section 6.2).
        """
        if self._has_direct_authority(principal_id, tag_id):
            return True
        for compound_id in self.tags.compounds_of(tag_id):
            if self._has_direct_authority(principal_id, compound_id):
                return True
        return False

    def check_authority(self, principal_id: int, tag_id: int) -> None:
        if not self.has_authority(principal_id, tag_id):
            principal = self.principals.get(principal_id)
            tag = self.tags.get(tag_id)
            raise AuthorityError(
                "principal %r has no authority for tag %r"
                % (principal.name, tag.name))

    def authority_for_all(self, principal_id: int,
                          tag_ids: Iterable[int]) -> bool:
        return all(self.has_authority(principal_id, t) for t in tag_ids)

    # ------------------------------------------------------------------
    # label helpers that need compound expansion
    # ------------------------------------------------------------------
    def expand(self, label: Label) -> FrozenSet[int]:
        """Tag-id closure of a label with compounds expanded."""
        return self.tags.expand(label.tags)

    def resolve_tags(self, names: Iterable[str]) -> Tuple[int, ...]:
        """Map tag names to ids (convenience for SQL and tests)."""
        return tuple(self.tags.lookup(n).id for n in names)

    def label_of(self, *names: str) -> Label:
        """Build a label from tag names."""
        return Label(self.resolve_tags(names))

    def describe_label(self, label: Label) -> Tuple[str, ...]:
        """Human-readable tag names of a label (sorted)."""
        return self.tags.names(label.tags)
