"""IFC processes, reduced-authority calls, and authority closures.

An :class:`IFCProcess` is the unit of coarse-grained tracking (section 2):
it carries a secrecy label, an integrity label, and the identity of the
principal whose authority it currently wields.  Label changes are always
*explicit* (section 4.2): reading never silently contaminates a process —
Query by Label filters instead — so the only ways a label changes are
``add_secrecy`` and ``declassify``.

Authority closures (section 3.3) bind authority to code: the closure runs
with the authority of the principal bound at creation time, and the
creator must hold that authority.  Reduced-authority calls run code with
*less* authority, supporting the Principle of Least Privilege.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..errors import AuthorityError, ClearanceError, IFCViolation
from .authority import AuthorityState
from .labels import EMPTY_LABEL, Label
from .rules import can_flow, can_flow_integrity, strip
from .tags import INTEGRITY, SECRECY


@dataclass(frozen=True)
class Closure:
    """A callable bound to a principal's authority (section 3.3)."""

    name: str
    fn: Callable
    principal: int


class IFCProcess:
    """A process tracked at label granularity.

    The process's *label* grows by explicit ``add_secrecy`` calls and
    shrinks by ``declassify`` (which needs authority).  The *integrity
    label* shrinks by explicit drops and grows by ``endorse`` (which needs
    authority).  Sessions attached to the process (database connections)
    observe label changes so the clearance rule for serializable
    transactions can be enforced at the moment the label is raised.
    """

    def __init__(self, authority: AuthorityState, principal: int,
                 label: Label = EMPTY_LABEL,
                 integrity_label: Label = EMPTY_LABEL):
        self.authority = authority
        authority.principals.get(principal)     # validate
        self._principal = principal
        self._label = label
        self._ilabel = integrity_label
        self._label_epoch = 0                   # bumped on every change
        self._sessions: "weakref.WeakSet" = weakref.WeakSet()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def principal(self) -> int:
        return self._principal

    @property
    def label(self) -> Label:
        return self._label

    @property
    def integrity_label(self) -> Label:
        return self._ilabel

    @property
    def label_epoch(self) -> int:
        """Monotone counter of label/principal changes, used by the
        client/server protocol to piggyback updates lazily."""
        return self._label_epoch

    def attach_session(self, session) -> None:
        """Register a database session for clearance-rule callbacks."""
        self._sessions.add(session)

    # ------------------------------------------------------------------
    # label changes (always explicit)
    # ------------------------------------------------------------------
    def _bump(self) -> None:
        self._label_epoch += 1

    def add_secrecy(self, tag_id: int) -> None:
        """Raise the label with ``tag_id``.

        Anyone may contaminate themselves, *except* that inside a
        serializable transaction the clearance rule (section 5.1) demands
        authority for the tag, because aborts become observable to
        concurrent transactions through conflicts.
        """
        tag = self.authority.tags.get(tag_id)
        if tag.kind != SECRECY:
            raise IFCViolation("tag %r is not a secrecy tag" % tag.name)
        for session in self._sessions:
            if session.requires_clearance():
                if not self.authority.has_authority(self._principal, tag_id):
                    raise ClearanceError(
                        "serializable transaction in progress: raising the "
                        "label with %r requires authority for it" % tag.name)
        if tag_id in self._label:
            return
        self._label = self._label.with_tag(tag_id)
        self._bump()

    def add_secrecy_label(self, label: Label) -> None:
        for tag_id in label:
            self.add_secrecy(tag_id)

    def declassify(self, tag_id: int) -> None:
        """Remove ``tag_id`` (or a compound's members) from the label.

        Requires authority for the tag (section 3.2).  Declassifying a
        compound tag strips the compound and all of its members.
        """
        self.authority.check_authority(self._principal, tag_id)
        new_label = strip(self.authority.tags, self._label, Label((tag_id,)))
        if tag_id in self._label and new_label == self._label:
            new_label = self._label.without((tag_id,))
        if new_label != self._label:
            self._label = new_label
            self._bump()

    def declassify_all(self, tag_ids: Iterable[int]) -> None:
        for tag_id in tag_ids:
            self.declassify(tag_id)

    def set_label(self, label: Label) -> None:
        """Replace the label, checking each direction tag-by-tag.

        Additions follow ``add_secrecy`` (clearance rule applies);
        removals follow ``declassify`` (authority required).
        """
        for tag_id in label.tags - self._label.tags:
            self.add_secrecy(tag_id)
        for tag_id in self._label.tags - label.tags:
            self.declassify(tag_id)

    # -- integrity (dual rules; extension per DESIGN.md) ----------------
    def endorse(self, tag_id: int) -> None:
        """Add an integrity tag; requires authority (vouching)."""
        tag = self.authority.tags.get(tag_id)
        if tag.kind != INTEGRITY:
            raise IFCViolation("tag %r is not an integrity tag" % tag.name)
        self.authority.check_authority(self._principal, tag_id)
        if tag_id not in self._ilabel:
            self._ilabel = self._ilabel.with_tag(tag_id)
            self._bump()

    def drop_integrity(self, tag_id: int) -> None:
        """Drop an integrity tag (always allowed, like adding secrecy)."""
        if tag_id in self._ilabel:
            self._ilabel = self._ilabel.without((tag_id,))
            self._bump()

    # ------------------------------------------------------------------
    # release gate
    # ------------------------------------------------------------------
    def can_release(self, destination_label: Label = EMPTY_LABEL,
                    destination_integrity: Label = EMPTY_LABEL) -> bool:
        """May this process send data to a destination with these labels?

        The outside world has the empty label (section 3.2), so a process
        must be uncontaminated to talk to it.
        """
        registry = self.authority.tags
        return (can_flow(registry, self._label, destination_label)
                and can_flow_integrity(registry, self._ilabel,
                                       destination_integrity))

    def check_release(self, destination_label: Label = EMPTY_LABEL) -> None:
        if not self.can_release(destination_label):
            names = self.authority.describe_label(self._label)
            raise IFCViolation(
                "process is contaminated with %r and cannot release to a "
                "destination labelled %r" % (names, destination_label))

    # ------------------------------------------------------------------
    # authority scoping
    # ------------------------------------------------------------------
    def has_authority(self, tag_id: int) -> bool:
        return self.authority.has_authority(self._principal, tag_id)

    def with_reduced_authority(self, principal: int, fn: Callable, *args,
                               **kwargs):
        """Run ``fn`` with the authority of ``principal`` (section 3.3).

        The label is shared — contamination picked up inside persists —
        but authority is restored afterwards.  No check is made that the
        new principal is "weaker"; the point is choosing *which* authority
        is exposed to the callee.
        """
        saved = self._principal
        self.authority.principals.get(principal)
        self._principal = principal
        self._bump()
        try:
            return fn(*args, **kwargs)
        finally:
            self._principal = saved
            self._bump()

    def make_closure(self, name: str, fn: Callable,
                     principal: Optional[int] = None,
                     grant_tags: Iterable[int] = ()) -> Closure:
        """Create an authority closure.

        By default the closure is bound to a *fresh* principal to which the
        creator delegates exactly ``grant_tags`` — the least-privilege
        pattern of section 3.3.  The creator must hold every granted tag's
        authority (delegation enforces this).  Alternatively an existing
        ``principal`` can be bound directly.
        """
        if principal is None:
            closure_principal = self.authority.create_principal(
                "closure:%s" % name)
            for tag_id in grant_tags:
                self.authority.delegate(tag_id, self._principal,
                                        closure_principal.id, process=self)
            principal = closure_principal.id
        else:
            self.authority.principals.get(principal)
        return Closure(name=name, fn=fn, principal=principal)

    def call_closure(self, closure: Closure, *args, **kwargs):
        """Invoke a closure with its bound authority (section 3.3)."""
        return self.with_reduced_authority(closure.principal, closure.fn,
                                           *args, **kwargs)

    # ------------------------------------------------------------------
    # authority-state mutation through the process (empty-label checks)
    # ------------------------------------------------------------------
    def delegate(self, tag_id: int, grantee: int) -> None:
        """Delegate authority for a tag to another principal.

        Requires this process to have an empty label (the authority state
        is an empty-labelled object, section 3.2)."""
        self.authority.delegate(tag_id, self._principal, grantee, process=self)

    def revoke(self, tag_id: int, grantee: int) -> None:
        self.authority.revoke(tag_id, self._principal, grantee, process=self)

    def __repr__(self) -> str:
        name = self.authority.principals.get(self._principal).name
        return "IFCProcess(principal=%r, label=%r)" % (name, self._label)
