"""The DIFC model (sections 3 and 7.3 of the paper).

This package implements the Aeolus-style decentralized information flow
control model IFDB builds on: tags and compound tags, immutable labels,
principals, the authority state with delegation and revocation, IFC
processes with explicit label changes, reduced-authority calls, and
authority closures.
"""

from .authority import AuthorityState
from .idgen import IdGenerator, SeededIdGenerator, SequentialIdGenerator
from .labels import EMPTY_LABEL, Label, as_label
from .principals import Principal
from .process import Closure, IFCProcess
from .rules import (
    can_flow,
    can_flow_integrity,
    covers,
    may_commit,
    may_write,
    same_contamination,
    strip,
    symmetric_difference,
    tuple_visible,
)
from .tags import INTEGRITY, SECRECY, Tag, TagRegistry

__all__ = [
    "AuthorityState",
    "Closure",
    "EMPTY_LABEL",
    "IFCProcess",
    "IdGenerator",
    "INTEGRITY",
    "Label",
    "Principal",
    "SECRECY",
    "SeededIdGenerator",
    "SequentialIdGenerator",
    "Tag",
    "TagRegistry",
    "as_label",
    "can_flow",
    "can_flow_integrity",
    "covers",
    "may_commit",
    "may_write",
    "same_contamination",
    "strip",
    "symmetric_difference",
    "tuple_visible",
]
