"""Thread-aware counter groups.

The engine's counter families (label rules, index probes, executor,
spill, stats, WAL) are process-wide singletons whose hot paths do
``COUNTERS.field += 1``.  That was fine single-threaded, but the
per-statement metrics bracket reads the same singletons around every
statement: two sessions executing concurrently (threaded group commit,
the parallel worker pool's coordinator thread) would attribute each
other's counters to the wrong statement.

:class:`CounterGroup` fixes this with the same accumulate-then-merge
shape the parallel executor uses between processes, applied between
threads:

* plain attribute reads/writes (``group.field``) go to a **per-thread**
  slotted state object, so ``+=`` stays a linearizable read-modify-write
  of thread-private storage and a statement bracket (two reads on the
  executing thread) can only ever see its own thread's work;
* :meth:`totals` / :meth:`snapshot` sum the per-thread states (plus a
  base that absorbs the states of threads that have exited), so
  whole-process views — ``Database.stats()``, benchmark snapshots —
  still see everything every thread did;
* fields named in :attr:`MAX_FIELDS` are high-water gauges, not
  additive counters: totals combine them with ``max`` instead of ``+``
  (e.g. the WAL's largest group-commit batch).

Subclasses declare their counters in :attr:`FIELDS` (an ordered tuple,
deliberately *not* ``__slots__``: real slots would be storage shared
across threads, which is the bug this class exists to fix).
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import Dict, Tuple

#: Every live group, so a forked child can re-arm the locks it
#: inherited (see ``_reinit_locks_after_fork``).
_ALL_GROUPS: list = []


class _GroupLocal(threading.local):
    """One slotted state object per (group, thread).

    ``threading.local`` re-runs ``__init__`` with the original
    constructor arguments in every thread that first touches an
    attribute, which is exactly the hook needed to register the new
    thread's state with the owning group.
    """

    def __init__(self, owner: "CounterGroup"):
        state = owner._state_type()
        self.state = state
        with owner._lock:
            owner._states.append((threading.current_thread(), state))


def _state_type_for(cls) -> type:
    """The per-thread storage type for a CounterGroup subclass: a
    slotted class with one int slot per field, zeroed on creation
    (cached on the subclass)."""
    cached = cls.__dict__.get("_STATE_TYPE")
    if cached is not None:
        return cached
    fields = cls.FIELDS

    def _init(self, _fields=fields):
        for field in _fields:
            setattr(self, field, 0)

    state_type = type(cls.__name__ + "State", (),
                      {"__slots__": fields, "__init__": _init})
    cls._STATE_TYPE = state_type
    return state_type


class CounterGroup:
    """Base class for thread-aware counter families (see module doc)."""

    #: Ordered counter names.  Subclasses must override.
    FIELDS: Tuple[str, ...] = ()
    #: Subset of FIELDS that are high-water gauges (max-combined).
    MAX_FIELDS: Tuple[str, ...] = ()

    def __init__(self):
        cls = type(self)
        object.__setattr__(self, "_state_type", _state_type_for(cls))
        object.__setattr__(self, "_lock", threading.Lock())
        object.__setattr__(self, "_states", [])
        object.__setattr__(self, "_base", dict.fromkeys(cls.FIELDS, 0))
        object.__setattr__(self, "_local", _GroupLocal(self))
        _ALL_GROUPS.append(weakref.ref(self))

    # -- attribute access: thread-local ---------------------------------
    def __getattr__(self, name):
        # Only reached when normal lookup fails, i.e. for counter
        # fields (internals live in the instance dict).
        if name in type(self).FIELDS:
            return getattr(self._local.state, name)
        raise AttributeError("%s has no attribute %r"
                             % (type(self).__name__, name))

    def __setattr__(self, name, value):
        if name in type(self).FIELDS:
            setattr(self._local.state, name, value)
        else:
            object.__setattr__(self, name, value)

    # -- cross-thread views ---------------------------------------------
    def totals(self) -> Dict[str, int]:
        """Sum of every thread's state plus the folded base, in FIELDS
        order.  States of threads that have exited are folded into the
        base and dropped, so the list of live states stays bounded by
        the number of live threads."""
        cls = type(self)
        fields = cls.FIELDS
        maxes = cls.MAX_FIELDS
        current = threading.current_thread()
        with self._lock:
            base = self._base
            out = dict(base)
            live = []
            for thread, state in self._states:
                for field in fields:
                    value = getattr(state, field)
                    if field in maxes:
                        if value > out[field]:
                            out[field] = value
                    else:
                        out[field] += value
                if thread.is_alive() or thread is current:
                    live.append((thread, state))
                else:
                    for field in fields:
                        value = getattr(state, field)
                        if field in maxes:
                            if value > base[field]:
                                base[field] = value
                        else:
                            base[field] += value
            self._states[:] = live
        return out

    def snapshot(self) -> Dict[str, int]:
        return self.totals()

    def reset(self) -> None:
        """Zero the base and every thread's state.

        Meant for test isolation / fresh measurement windows while no
        *other* thread is mid-increment; a concurrent ``+=`` on another
        thread may survive the reset (it raced it), which is the best
        any reset of live counters can promise.
        """
        with self._lock:
            for field in type(self).FIELDS:
                self._base[field] = 0
            for _thread, state in self._states:
                for field in type(self).FIELDS:
                    setattr(state, field, 0)


def _reinit_locks_after_fork() -> None:
    """Re-arm every group's lock in a freshly forked child.

    A fork can land while another parent thread holds a group's lock
    (a concurrent ``totals()``); that thread does not exist in the
    child, so the inherited lock would stay held forever and the
    child's first ``reset()``/``totals()`` would deadlock.  The child
    is single-threaded at this point, so replacing the locks outright
    is safe.
    """
    dead = []
    for ref in _ALL_GROUPS:
        group = ref()
        if group is None:
            dead.append(ref)
            continue
        object.__setattr__(group, "_lock", threading.Lock())
    for ref in dead:
        _ALL_GROUPS.remove(ref)


if hasattr(os, "register_at_fork"):               # POSIX; 3.7+
    os.register_at_fork(after_in_child=_reinit_locks_after_fork)
