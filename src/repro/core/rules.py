"""The information flow rules (sections 3.2, 4.2, 5.1).

These predicates are shared by the database engine and the application
platform so there is exactly one implementation of each rule:

* **Information Flow Rule** — information may flow from a source labelled
  ``LS`` to a destination labelled ``LD`` iff ``LS ⊆ LD``.
* **Label Confinement Rule** — a query by a process labelled ``LP`` sees
  only tuples ``T`` with ``LT ⊆ LP``.
* **Write Rule** — a process labelled ``LP`` may write a tuple labelled
  ``LT`` only if ``LT ⊇ LP``; combined with confinement, writes carry
  exactly ``LP``.
* **Commit Label Rule** — a transaction may commit only if its label at
  the commit point is no more contaminated than any tuple in its write
  set (``L_commit ⊆ LT`` for every written tuple).

All subset comparisons expand compound tags: a label containing
``all_drives`` covers one containing ``alice_drives``.  Integrity labels
obey the dual rules (``LS ⊇ LD`` for flows).

The expansion-path comparisons are *memoized* per registry, keyed on
``(tuple_label, process_label, registry_version)``: labels are interned
(:mod:`repro.core.labels`), compound membership is fixed at tag-creation
time, and the registry version bumps on every tag registration — so a
cached verdict can never go stale, and the per-tuple ``covers``/``strip``
calls on the scan hot path (Query by Label, section 4.2) collapse to a
single dict hit once a (label, label) pair has been seen.
"""

from __future__ import annotations

from weakref import WeakKeyDictionary

from .counters import CounterGroup
from .labels import Label
from .tags import TagRegistry

_CACHE_CAP = 1 << 16


class RuleCounters(CounterGroup):
    """Process-wide invocation counters for the label rules.

    ``covers_calls``/``strip_calls`` count *invocations* of the two
    hot-path predicates — including memo hits and plain-subset fast
    paths — because what the paper's Query-by-Label cost is made of is
    the per-tuple call itself (section 7.1).  The batched executor's
    label-run amortization collapses one call per tuple into one call
    per distinct label per batch, and the fig6 benchmark reads these
    counters to prove it.  ``rows_suppressed`` counts tuples the scans
    rejected under the Label Confinement Rule — the quantity the IFC
    audit trail (:mod:`repro.db.metrics`) attributes per statement;
    it is incremented at the rejection sites in
    :mod:`repro.db.physical`, not here, because under the batched
    label-run memo a suppression does not always correspond to a
    ``covers`` call.  Counters are global (labels and registries are
    process-wide too) but accumulate per thread
    (:class:`~repro.core.counters.CounterGroup`), so concurrent
    statements cannot contaminate each other's deltas; measurements
    should diff before/after — the metrics registry registers this
    instance as its ``labels`` group and does exactly that around
    every statement.
    """

    FIELDS = ("covers_calls", "strip_calls", "rows_suppressed")


#: The module-wide counter instance (see :class:`RuleCounters`).
COUNTERS = RuleCounters()


class _RuleCache:
    """Memoized covers/strip verdicts for one registry version."""

    __slots__ = ("version", "covers", "strip")

    def __init__(self, version):
        self.version = version
        self.covers = {}
        self.strip = {}


_RULE_CACHES: "WeakKeyDictionary[TagRegistry, _RuleCache]" = \
    WeakKeyDictionary()


def _cache_for(registry: TagRegistry) -> _RuleCache:
    cache = _RULE_CACHES.get(registry)
    version = getattr(registry, "version", None)
    if cache is None or cache.version != version:
        cache = _RuleCache(version)
        _RULE_CACHES[registry] = cache
    return cache


def covers(registry: TagRegistry, low: Label, high: Label) -> bool:
    """True iff ``low ⊆ high`` after compound expansion.

    "``high`` covers ``low``": every tag of ``low`` appears in ``high``
    either directly or as a member of one of ``high``'s compound tags.
    """
    COUNTERS.covers_calls += 1
    low_tags = low.tags
    if not low_tags:
        return True
    high_tags = high.tags
    if low_tags <= high_tags:           # fast path: plain subset
        return True
    memo = _cache_for(registry).covers
    key = (low, high)
    verdict = memo.get(key)
    if verdict is None:
        verdict = low_tags <= registry.expand(high_tags)
        if len(memo) < _CACHE_CAP:
            memo[key] = verdict
    return verdict


def same_contamination(registry: TagRegistry, a: Label, b: Label) -> bool:
    """True iff the two labels denote the same contamination.

    Used by the update/delete rule ("affect only tuples with label LP"):
    equality up to compound expansion.
    """
    if a.tags == b.tags:
        return True
    return covers(registry, a, b) and covers(registry, b, a)


def can_flow(registry: TagRegistry, source: Label, destination: Label) -> bool:
    """The Information Flow Rule for secrecy labels."""
    return covers(registry, source, destination)


def can_flow_integrity(registry: TagRegistry, source: Label,
                       destination: Label) -> bool:
    """The dual rule for integrity: the source must vouch for at least the
    destination's integrity (``IS ⊇ ID``)."""
    return covers(registry, destination, source)


def tuple_visible(registry: TagRegistry, tuple_label: Label,
                  process_label: Label) -> bool:
    """The Label Confinement Rule (section 4.2)."""
    return covers(registry, tuple_label, process_label)


def may_write(registry: TagRegistry, tuple_label: Label,
              process_label: Label) -> bool:
    """The Write Rule (section 4.2): ``LT ⊇ LP``."""
    return covers(registry, process_label, tuple_label)


def may_commit(registry: TagRegistry, commit_label: Label,
               written_label: Label) -> bool:
    """The commit-label rule (section 5.1): ``L_commit ⊆ LT``.

    All writes conceptually happen at the commit point, so committing with
    a label above a written tuple's label would launder information into
    a less-contaminated tuple.
    """
    return covers(registry, commit_label, written_label)


def strip(registry: TagRegistry, label: Label, declassified: Label) -> Label:
    """Remove from ``label`` every tag covered by ``declassified``.

    A compound tag in ``declassified`` strips all of its member tags.
    Used by declassifying views (section 4.3) and explicit declassify
    with compound authority.  Memoized like :func:`covers`: a
    declassifying view strips the same (label, declassify) pair for
    every tuple it scans.
    """
    COUNTERS.strip_calls += 1
    if not label.tags or not declassified.tags:
        return label
    memo = _cache_for(registry).strip
    key = (label, declassified)
    stripped = memo.get(key)
    if stripped is None:
        removable = registry.expand(declassified.tags)
        remaining = [t for t in label.tags if t not in removable]
        stripped = label if len(remaining) == len(label) \
            else Label(remaining)
        if len(memo) < _CACHE_CAP:
            memo[key] = stripped
    return stripped


def symmetric_difference(a: Label, b: Label) -> Label:
    """``LA △ LB`` — the tags in exactly one of the labels.

    The Foreign Key Rule (section 5.2.2) requires declassification
    authority over this set when inserting a referencing tuple.
    """
    return Label(a.tags ^ b.tags)
