"""Identifier generation for principals and tags.

Section 7.3 of the paper notes that allocating principal and tag ids in a
predictable sequence would create an *allocation channel*: an observer who
learns a freshly created id could infer how many objects were created
before it (e.g. the order in which papers were submitted to HotCRP).  IFDB
therefore draws ids from a cryptographic pseudorandom number generator.

We reproduce that countermeasure with :mod:`secrets`.  For tests and
benchmarks that need reproducible runs, a deterministic generator seeded
from :mod:`random` can be swapped in; it keeps the *interface* property
that ids are non-sequential while making runs repeatable.
"""

from __future__ import annotations

import random
import secrets

# Ids are 63-bit positive integers so they fit in a signed 64-bit column.
_ID_BITS = 63


class IdGenerator:
    """Cryptographically pseudorandom id source (the paper's default)."""

    def next_id(self, used: set) -> int:
        """Return a fresh random id not present in ``used``."""
        while True:
            candidate = secrets.randbits(_ID_BITS)
            if candidate and candidate not in used:
                return candidate


class SeededIdGenerator(IdGenerator):
    """Deterministic id source for reproducible tests and benchmarks.

    Still non-sequential (drawn from a PRNG) so code cannot accidentally
    rely on ordering, but fully repeatable for a given seed.
    """

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def next_id(self, used: set) -> int:
        while True:
            candidate = self._rng.getrandbits(_ID_BITS)
            if candidate and candidate not in used:
                return candidate


class SequentialIdGenerator(IdGenerator):
    """Intentionally *insecure* sequential allocator.

    Exists so tests can demonstrate the allocation channel the random
    generators close (ids reveal creation order).
    """

    def __init__(self, start: int = 1):
        self._next = start

    def next_id(self, used: set) -> int:
        while self._next in used:
            self._next += 1
        value = self._next
        self._next += 1
        return value
