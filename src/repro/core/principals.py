"""Principals (section 3.2).

Principals are the entities with security interests: users, roles, and
services.  Authority over tags is bound to principals; each process runs
with the authority of exactly one principal at a time (reduced-authority
calls and closures switch it temporarily).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import UnknownPrincipalError


@dataclass(frozen=True)
class Principal:
    """A principal record in the authority state."""

    id: int
    name: str


class PrincipalRegistry:
    """Stores principal records, indexed by id and by unique name."""

    def __init__(self):
        self._principals: Dict[int, Principal] = {}
        self._by_name: Dict[str, int] = {}

    def add(self, principal: Principal) -> None:
        if principal.id in self._principals:
            raise ValueError("duplicate principal id %d" % principal.id)
        if principal.name in self._by_name:
            raise ValueError("duplicate principal name %r" % principal.name)
        self._principals[principal.id] = principal
        self._by_name[principal.name] = principal.id

    def get(self, principal_id: int) -> Principal:
        try:
            return self._principals[principal_id]
        except KeyError:
            raise UnknownPrincipalError(
                "no principal with id %d" % principal_id) from None

    def lookup(self, name: str) -> Principal:
        try:
            return self._principals[self._by_name[name]]
        except KeyError:
            raise UnknownPrincipalError("no principal named %r" % name) from None

    def __contains__(self, principal_id: int) -> bool:
        return principal_id in self._principals

    def __len__(self) -> int:
        return len(self._principals)
