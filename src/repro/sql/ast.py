"""Statement AST for the SQL dialect.

Expression nodes live in :mod:`repro.db.expressions`; this module defines
the statement-level nodes the parser produces and the planner consumes.
The IFDB extensions show up here: ``Insert.declassifying`` (the
``DECLASSIFYING`` clause of section 5.2.2), ``CreateView.declassifying``
(``WITH DECLASSIFYING``, section 4.3), ``MATCH LABEL`` foreign keys and
``LABEL CHECK`` constraints (section 5.2.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..db.expressions import Expr


# ---------------------------------------------------------------------------
# FROM items
# ---------------------------------------------------------------------------

@dataclass
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def effective_alias(self) -> str:
        return self.alias or self.name


@dataclass
class SubqueryRef:
    select: "Select"
    alias: str

    @property
    def effective_alias(self) -> str:
        return self.alias


@dataclass
class Join:
    left: "FromItem"
    right: "FromItem"
    kind: str                      # "inner" | "left"
    on: Optional[Expr]


FromItem = Union[TableRef, SubqueryRef, Join]


# ---------------------------------------------------------------------------
# queries
# ---------------------------------------------------------------------------

@dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass
class Select:
    items: List[SelectItem]
    from_items: List[FromItem] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[Expr] = None
    offset: Optional[Expr] = None
    distinct: bool = False
    for_update: bool = False


# ---------------------------------------------------------------------------
# DML
# ---------------------------------------------------------------------------

@dataclass
class Insert:
    table: str
    columns: Optional[List[str]]
    rows: Optional[List[List[Expr]]] = None      # VALUES form
    select: Optional[Select] = None              # INSERT ... SELECT form
    declassifying: List[str] = field(default_factory=list)  # tag names


@dataclass
class Update:
    table: str
    assignments: List[Tuple[str, Expr]]
    where: Optional[Expr] = None


@dataclass
class Delete:
    table: str
    where: Optional[Expr] = None


# ---------------------------------------------------------------------------
# DDL
# ---------------------------------------------------------------------------

@dataclass
class ColumnDef:
    name: str
    type_name: str
    type_length: Optional[int] = None
    not_null: bool = False
    primary_key: bool = False
    unique: bool = False
    default: object = None
    has_default: bool = False
    references: Optional[Tuple[str, str]] = None   # (table, column)
    match_label: bool = False


@dataclass
class TableConstraintDef:
    kind: str                                   # primary_key|unique|foreign_key|check|label_check
    name: Optional[str] = None
    columns: Tuple[str, ...] = ()
    ref_table: Optional[str] = None
    ref_columns: Tuple[str, ...] = ()
    expr: Optional[Expr] = None
    match_label: bool = False
    deferred: bool = False


@dataclass
class CreateTable:
    name: str
    columns: List[ColumnDef]
    constraints: List[TableConstraintDef] = field(default_factory=list)
    if_not_exists: bool = False


@dataclass
class CreateView:
    name: str
    select: Select
    declassifying: List[str] = field(default_factory=list)   # tag names


@dataclass
class CreateIndex:
    name: str
    table: str
    columns: List[str]
    unique: bool = False
    ordered: bool = False


@dataclass
class DropTable:
    name: str
    if_exists: bool = False


@dataclass
class DropView:
    name: str


@dataclass
class DropIndex:
    name: str


# ---------------------------------------------------------------------------
# transactions & misc
# ---------------------------------------------------------------------------

@dataclass
class Begin:
    isolation: Optional[str] = None      # "snapshot" | "serializable"


@dataclass
class Commit:
    pass


@dataclass
class Rollback:
    pass


@dataclass
class Call:
    """CALL procedure(args...) — stored procedure invocation."""

    name: str
    args: List[Expr]


@dataclass
class Vacuum:
    table: Optional[str] = None


@dataclass
class Analyze:
    """ANALYZE [table] — collect optimizer statistics (db/stats.py)."""

    table: Optional[str] = None


@dataclass
class Explain:
    """EXPLAIN [ANALYZE] <statement>.

    Plain EXPLAIN renders the plan instead of executing the statement;
    EXPLAIN ANALYZE executes it (writes included — exactly once) and
    annotates each operator with its measured actuals (rows, batches,
    wall time, counter deltas)."""

    statement: "Statement"
    analyze: bool = False


Statement = Union[Select, Insert, Update, Delete, CreateTable, CreateView,
                  CreateIndex, DropTable, DropView, DropIndex, Begin, Commit,
                  Rollback, Call, Vacuum, Analyze, Explain]
