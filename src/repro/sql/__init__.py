"""SQL front end: lexer, statement AST, and parser."""

from . import ast
from .parser import parse_expression, parse_script, parse_statement

__all__ = ["ast", "parse_expression", "parse_script", "parse_statement"]
