"""Recursive-descent parser for the SQL dialect.

The dialect is the subset of PostgreSQL's SQL that the paper's
applications and benchmarks exercise, plus IFDB's extensions:

* ``INSERT ... DECLASSIFYING (tag, ...)`` — the explicit foreign-key
  declassification clause of section 5.2.2;
* ``CREATE VIEW ... WITH DECLASSIFYING (tag, ...)`` — declassifying
  views, section 4.3;
* ``REFERENCES t(c) MATCH LABEL`` / ``FOREIGN KEY ... MATCH LABEL`` —
  label constraints as foreign keys, section 5.2.4;
* ``LABEL CHECK (expr)`` — expression label constraints over ``_label``;
* the ``_label`` system column usable anywhere a column is;
* ``EXPLAIN <statement>`` — returns the optimizer's plan (one operator
  per row, with estimated cost/rows) instead of executing the statement;
* ``EXPLAIN ANALYZE <statement>`` — executes the statement and returns
  the plan annotated with per-operator actuals (rows, batches, wall
  time, counter deltas; see :mod:`repro.db.metrics`).  Disambiguated
  from ``EXPLAIN ANALYZE`` *the statistics statement* by one token of
  lookahead: ``ANALYZE`` followed by a statement head keyword;
* ``ANALYZE [table]`` — collects the optimizer statistics
  (:mod:`repro.db.stats`) the cost model estimates cardinalities from.

Tag names in DECLASSIFYING clauses may be identifiers or string
literals (tags like ``'alice-drives'`` contain hyphens).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..db import expressions as ex
from ..errors import SQLSyntaxError
from . import ast
from .lexer import EOF, IDENT, NUMBER, OP, PARAM, STRING, Token, tokenize


class Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.position = 0
        self.param_counter = 0

    # ------------------------------------------------------------------
    # token utilities
    # ------------------------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.position + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != EOF:
            self.position += 1
        return token

    def at_keyword(self, *words: str) -> bool:
        token = self.peek()
        return any(token.matches_keyword(w) for w in words)

    def accept_keyword(self, *words: str) -> bool:
        if self.at_keyword(*words):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            self.error("expected %s" % word)

    def accept_op(self, op: str) -> bool:
        token = self.peek()
        if token.kind == OP and token.value == op:
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            self.error("expected %r" % op)

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind != IDENT:
            self.error("expected identifier")
        self.advance()
        return token.value

    def error(self, message: str) -> None:
        token = self.peek()
        raise SQLSyntaxError(
            "%s at position %d (near %r) in: %s"
            % (message, token.position,
               token.value if token.kind != EOF else "<end>",
               self.sql.strip()[:120]))

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def parse_statement(self) -> ast.Statement:
        statement = self._statement()
        self.accept_op(";")
        if self.peek().kind != EOF:
            self.error("unexpected trailing input")
        return statement

    def parse_script(self) -> List[ast.Statement]:
        statements = []
        while self.peek().kind != EOF:
            statements.append(self._statement())
            while self.accept_op(";"):
                pass
        return statements

    def _statement(self) -> ast.Statement:
        if self.accept_keyword("EXPLAIN"):
            # ``EXPLAIN ANALYZE <stmt>`` vs ``EXPLAIN ANALYZE [table]``
            # (the statistics statement): one token of lookahead —
            # ANALYZE followed by a statement head is the analyzing
            # EXPLAIN, anything else is EXPLAIN over ANALYZE.
            analyze = False
            if self.at_keyword("ANALYZE"):
                following = self.peek(1)
                if any(following.matches_keyword(word) for word in
                       ("SELECT", "INSERT", "UPDATE", "DELETE")):
                    self.advance()
                    analyze = True
            return ast.Explain(self._statement(), analyze=analyze)
        if self.at_keyword("SELECT"):
            return self._select()
        if self.at_keyword("INSERT"):
            return self._insert()
        if self.at_keyword("UPDATE"):
            return self._update()
        if self.at_keyword("DELETE"):
            return self._delete()
        if self.at_keyword("CREATE"):
            return self._create()
        if self.at_keyword("DROP"):
            return self._drop()
        if self.at_keyword("BEGIN", "START"):
            return self._begin()
        if self.accept_keyword("COMMIT"):
            self.accept_keyword("TRANSACTION")
            return ast.Commit()
        if self.accept_keyword("ROLLBACK") or self.accept_keyword("ABORT"):
            self.accept_keyword("TRANSACTION")
            return ast.Rollback()
        if self.at_keyword("CALL"):
            return self._call()
        if self.accept_keyword("VACUUM"):
            table = None
            if self.peek().kind == IDENT:
                table = self.expect_ident()
            return ast.Vacuum(table)
        if self.accept_keyword("ANALYZE"):
            table = None
            if self.peek().kind == IDENT:
                table = self.expect_ident()
            return ast.Analyze(table)
        self.error("unrecognized statement")

    # -- SELECT -----------------------------------------------------------
    def _select(self) -> ast.Select:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        self.accept_keyword("ALL")
        items = [self._select_item()]
        while self.accept_op(","):
            items.append(self._select_item())
        from_items: List[ast.FromItem] = []
        if self.accept_keyword("FROM"):
            from_items.append(self._from_item())
            while self.accept_op(","):
                from_items.append(self._from_item())
        where = self.expr() if self.accept_keyword("WHERE") else None
        group_by: List[ex.Expr] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.expr())
            while self.accept_op(","):
                group_by.append(self.expr())
        having = self.expr() if self.accept_keyword("HAVING") else None
        order_by: List[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self._order_item())
            while self.accept_op(","):
                order_by.append(self._order_item())
        limit = None
        offset = None
        if self.accept_keyword("LIMIT"):
            limit = self.expr()
        if self.accept_keyword("OFFSET"):
            offset = self.expr()
        for_update = False
        if self.accept_keyword("FOR"):
            self.expect_keyword("UPDATE")
            for_update = True
        return ast.Select(items=items, from_items=from_items, where=where,
                          group_by=group_by, having=having,
                          order_by=order_by, limit=limit, offset=offset,
                          distinct=distinct, for_update=for_update)

    def _select_item(self) -> ast.SelectItem:
        if self.accept_op("*"):
            return ast.SelectItem(ex.Star())
        # alias.* form
        token = self.peek()
        if (token.kind == IDENT and self.peek(1).kind == OP
                and self.peek(1).value == "."
                and self.peek(2).kind == OP and self.peek(2).value == "*"):
            self.advance()
            self.advance()
            self.advance()
            return ast.SelectItem(ex.Star(table=token.value))
        expr = self.expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif (self.peek().kind == IDENT
              and not self._is_clause_keyword(self.peek())):
            alias = self.expect_ident()
        return ast.SelectItem(expr, alias)

    _CLAUSE_WORDS = {
        "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "OFFSET",
        "UNION", "JOIN", "INNER", "LEFT", "RIGHT", "OUTER", "ON", "AND",
        "OR", "NOT", "AS", "FOR", "DECLASSIFYING", "WITH", "ASC", "DESC",
        "IS", "IN", "BETWEEN", "LIKE", "THEN", "ELSE", "END", "WHEN",
        "CROSS", "SET", "VALUES",
    }

    def _is_clause_keyword(self, token: Token) -> bool:
        return (token.kind == IDENT
                and token.value.upper() in self._CLAUSE_WORDS)

    def _from_item(self) -> ast.FromItem:
        item = self._from_primary()
        while True:
            if self.at_keyword("JOIN", "INNER", "CROSS"):
                kind = "inner"
                self.accept_keyword("INNER")
                cross = self.accept_keyword("CROSS")
                self.expect_keyword("JOIN")
                right = self._from_primary()
                on = None
                if not cross:
                    self.expect_keyword("ON")
                    on = self.expr()
                item = ast.Join(item, right, kind, on)
            elif self.at_keyword("LEFT"):
                self.advance()
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
                right = self._from_primary()
                self.expect_keyword("ON")
                on = self.expr()
                item = ast.Join(item, right, "left", on)
            else:
                return item

    def _from_primary(self) -> ast.FromItem:
        if self.accept_op("("):
            select = self._select()
            self.expect_op(")")
            self.accept_keyword("AS")
            alias = self.expect_ident()
            return ast.SubqueryRef(select, alias)
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif (self.peek().kind == IDENT
              and not self._is_clause_keyword(self.peek())):
            alias = self.expect_ident()
        return ast.TableRef(name, alias)

    def _order_item(self) -> ast.OrderItem:
        expr = self.expr()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expr, descending)

    # -- INSERT -----------------------------------------------------------
    def _insert(self) -> ast.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns = None
        if self.accept_op("("):
            columns = [self.expect_ident()]
            while self.accept_op(","):
                columns.append(self.expect_ident())
            self.expect_op(")")
        rows = None
        select = None
        if self.accept_keyword("VALUES"):
            rows = [self._value_row()]
            while self.accept_op(","):
                rows.append(self._value_row())
        elif self.at_keyword("SELECT"):
            select = self._select()
        else:
            self.error("expected VALUES or SELECT")
        declassifying = self._declassifying_clause()
        return ast.Insert(table=table, columns=columns, rows=rows,
                          select=select, declassifying=declassifying)

    def _value_row(self) -> List[ex.Expr]:
        self.expect_op("(")
        row = [self.expr()]
        while self.accept_op(","):
            row.append(self.expr())
        self.expect_op(")")
        return row

    def _declassifying_clause(self) -> List[str]:
        if not self.accept_keyword("DECLASSIFYING"):
            return []
        self.expect_op("(")
        tags = [self._tag_name()]
        while self.accept_op(","):
            tags.append(self._tag_name())
        self.expect_op(")")
        return tags

    def _tag_name(self) -> str:
        token = self.peek()
        if token.kind in (IDENT, STRING):
            self.advance()
            return token.value
        self.error("expected tag name")

    # -- UPDATE / DELETE ------------------------------------------------
    def _update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments = [self._assignment()]
        while self.accept_op(","):
            assignments.append(self._assignment())
        where = self.expr() if self.accept_keyword("WHERE") else None
        return ast.Update(table=table, assignments=assignments, where=where)

    def _assignment(self) -> Tuple[str, ex.Expr]:
        column = self.expect_ident()
        self.expect_op("=")
        return (column, self.expr())

    def _delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = self.expr() if self.accept_keyword("WHERE") else None
        return ast.Delete(table=table, where=where)

    # -- CREATE -----------------------------------------------------------
    def _create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            return self._create_table()
        if self.accept_keyword("VIEW"):
            return self._create_view()
        unique = self.accept_keyword("UNIQUE")
        ordered = self.accept_keyword("ORDERED")
        if self.accept_keyword("INDEX"):
            return self._create_index(unique, ordered)
        self.error("expected TABLE, VIEW, or INDEX")

    def _create_table(self) -> ast.CreateTable:
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.expect_ident()
        self.expect_op("(")
        columns: List[ast.ColumnDef] = []
        constraints: List[ast.TableConstraintDef] = []
        while True:
            constraint = self._table_constraint()
            if constraint is not None:
                constraints.append(constraint)
            else:
                columns.append(self._column_def())
            if not self.accept_op(","):
                break
        self.expect_op(")")
        return ast.CreateTable(name=name, columns=columns,
                               constraints=constraints,
                               if_not_exists=if_not_exists)

    def _table_constraint(self) -> Optional[ast.TableConstraintDef]:
        name = None
        saved = self.position
        if self.accept_keyword("CONSTRAINT"):
            name = self.expect_ident()
        if self.accept_keyword("PRIMARY"):
            self.expect_keyword("KEY")
            return ast.TableConstraintDef(kind="primary_key", name=name,
                                          columns=self._column_list())
        if self.at_keyword("UNIQUE") and self.peek(1).kind == OP \
                and self.peek(1).value == "(":
            self.advance()
            return ast.TableConstraintDef(kind="unique", name=name,
                                          columns=self._column_list())
        if self.accept_keyword("FOREIGN"):
            self.expect_keyword("KEY")
            columns = self._column_list()
            self.expect_keyword("REFERENCES")
            ref_table = self.expect_ident()
            ref_columns = self._column_list()
            match_label = self._match_label()
            deferred = self.accept_keyword("DEFERRABLE")
            return ast.TableConstraintDef(
                kind="foreign_key", name=name, columns=columns,
                ref_table=ref_table, ref_columns=ref_columns,
                match_label=match_label, deferred=deferred)
        if self.accept_keyword("CHECK"):
            self.expect_op("(")
            expr = self.expr()
            self.expect_op(")")
            return ast.TableConstraintDef(kind="check", name=name, expr=expr)
        if self.at_keyword("LABEL") and self.peek(1).matches_keyword("CHECK"):
            self.advance()
            self.advance()
            self.expect_op("(")
            expr = self.expr()
            self.expect_op(")")
            return ast.TableConstraintDef(kind="label_check", name=name,
                                          expr=expr)
        if name is not None:
            self.position = saved
        return None

    def _column_list(self) -> Tuple[str, ...]:
        self.expect_op("(")
        columns = [self.expect_ident()]
        while self.accept_op(","):
            columns.append(self.expect_ident())
        self.expect_op(")")
        return tuple(columns)

    def _match_label(self) -> bool:
        if self.accept_keyword("MATCH"):
            self.expect_keyword("LABEL")
            return True
        return False

    def _column_def(self) -> ast.ColumnDef:
        name = self.expect_ident()
        type_name = self.expect_ident()
        type_length = None
        if self.accept_op("("):
            token = self.advance()
            if token.kind != NUMBER:
                self.error("expected type length")
            type_length = int(token.value)
            # e.g. NUMERIC(12, 2): scale is accepted and ignored
            if self.accept_op(","):
                scale = self.advance()
                if scale.kind != NUMBER:
                    self.error("expected type scale")
            self.expect_op(")")
        col = ast.ColumnDef(name=name, type_name=type_name,
                            type_length=type_length)
        while True:
            if self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                col.not_null = True
            elif self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                col.primary_key = True
            elif self.accept_keyword("UNIQUE"):
                col.unique = True
            elif self.accept_keyword("DEFAULT"):
                col.default = self._literal_value()
                col.has_default = True
            elif self.accept_keyword("REFERENCES"):
                ref_table = self.expect_ident()
                self.expect_op("(")
                ref_column = self.expect_ident()
                self.expect_op(")")
                col.references = (ref_table, ref_column)
                col.match_label = self._match_label()
            else:
                break
        return col

    def _literal_value(self):
        token = self.peek()
        if token.kind == NUMBER or token.kind == STRING:
            self.advance()
            return token.value
        if self.accept_keyword("NULL"):
            return None
        if self.accept_keyword("TRUE"):
            return True
        if self.accept_keyword("FALSE"):
            return False
        if self.accept_op("-"):
            number = self.advance()
            if number.kind != NUMBER:
                self.error("expected number after -")
            return -number.value
        self.error("expected literal default value")

    def _create_view(self) -> ast.CreateView:
        name = self.expect_ident()
        self.expect_keyword("AS")
        select = self._select()
        declassifying: List[str] = []
        if self.accept_keyword("WITH"):
            self.expect_keyword("DECLASSIFYING")
            self.expect_op("(")
            declassifying.append(self._tag_name())
            while self.accept_op(","):
                declassifying.append(self._tag_name())
            self.expect_op(")")
        return ast.CreateView(name=name, select=select,
                              declassifying=declassifying)

    def _create_index(self, unique: bool, ordered: bool) -> ast.CreateIndex:
        name = self.expect_ident()
        self.expect_keyword("ON")
        table = self.expect_ident()
        columns = list(self._column_list())
        return ast.CreateIndex(name=name, table=table, columns=columns,
                               unique=unique, ordered=ordered)

    def _drop(self) -> ast.Statement:
        self.expect_keyword("DROP")
        if self.accept_keyword("TABLE"):
            if_exists = False
            if self.accept_keyword("IF"):
                self.expect_keyword("EXISTS")
                if_exists = True
            return ast.DropTable(self.expect_ident(), if_exists)
        if self.accept_keyword("VIEW"):
            return ast.DropView(self.expect_ident())
        if self.accept_keyword("INDEX"):
            return ast.DropIndex(self.expect_ident())
        self.error("expected TABLE, VIEW, or INDEX")

    def _begin(self) -> ast.Begin:
        self.advance()
        self.accept_keyword("TRANSACTION")
        self.accept_keyword("WORK")
        isolation = None
        if self.accept_keyword("ISOLATION"):
            self.expect_keyword("LEVEL")
            if self.accept_keyword("SERIALIZABLE"):
                isolation = "serializable"
            elif self.accept_keyword("SNAPSHOT"):
                isolation = "snapshot"
            else:
                self.error("expected isolation level")
        return ast.Begin(isolation)

    def _call(self) -> ast.Call:
        self.expect_keyword("CALL")
        name = self.expect_ident()
        args: List[ex.Expr] = []
        self.expect_op("(")
        if not self.accept_op(")"):
            args.append(self.expr())
            while self.accept_op(","):
                args.append(self.expr())
            self.expect_op(")")
        return ast.Call(name=name, args=args)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    def expr(self) -> ex.Expr:
        return self._or_expr()

    def _or_expr(self) -> ex.Expr:
        left = self._and_expr()
        if not self.at_keyword("OR"):
            return left
        items = [left]
        while self.accept_keyword("OR"):
            items.append(self._and_expr())
        return ex.Or(items)

    def _and_expr(self) -> ex.Expr:
        left = self._not_expr()
        if not self.at_keyword("AND"):
            return left
        items = [left]
        while self.accept_keyword("AND"):
            items.append(self._not_expr())
        return ex.And(items)

    def _not_expr(self) -> ex.Expr:
        if self.accept_keyword("NOT"):
            return ex.Not(self._not_expr())
        return self._comparison()

    def _comparison(self) -> ex.Expr:
        left = self._additive()
        token = self.peek()
        if token.kind == OP and token.value in ("=", "<>", "!=", "<", "<=",
                                                ">", ">="):
            self.advance()
            right = self._additive()
            return ex.Compare(token.value, left, right)
        if self.accept_keyword("IS"):
            negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return ex.IsNull(left, negated)
        negated = False
        if self.at_keyword("NOT") and self.peek(1).kind == IDENT \
                and self.peek(1).value.upper() in ("IN", "BETWEEN", "LIKE"):
            self.advance()
            negated = True
        if self.accept_keyword("IN"):
            self.expect_op("(")
            if self.at_keyword("SELECT"):
                select = self._select()
                self.expect_op(")")
                return ex.InSelect(left, select, negated)
            items = [self.expr()]
            while self.accept_op(","):
                items.append(self.expr())
            self.expect_op(")")
            return ex.InList(left, items, negated)
        if self.accept_keyword("BETWEEN"):
            low = self._additive()
            self.expect_keyword("AND")
            high = self._additive()
            return ex.Between(left, low, high, negated)
        if self.accept_keyword("LIKE"):
            return ex.Like(left, self._additive(), negated)
        return left

    def _additive(self) -> ex.Expr:
        left = self._multiplicative()
        while True:
            token = self.peek()
            if token.kind == OP and token.value in ("+", "-", "||"):
                self.advance()
                right = self._multiplicative()
                left = ex.BinOp(token.value, left, right)
            else:
                return left

    def _multiplicative(self) -> ex.Expr:
        left = self._unary()
        while True:
            token = self.peek()
            if token.kind == OP and token.value in ("*", "/", "%"):
                self.advance()
                right = self._unary()
                left = ex.BinOp(token.value, left, right)
            else:
                return left

    def _unary(self) -> ex.Expr:
        if self.accept_op("-"):
            return ex.Neg(self._unary())
        if self.accept_op("+"):
            return self._unary()
        return self._primary()

    _AGG_FUNCS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}

    def _primary(self) -> ex.Expr:
        token = self.peek()
        if token.kind == NUMBER or token.kind == STRING:
            self.advance()
            return ex.Literal(token.value)
        if token.kind == PARAM:
            self.advance()
            param = ex.Param(self.param_counter)
            self.param_counter += 1
            return param
        if self.accept_op("("):
            if self.at_keyword("SELECT"):
                select = self._select()
                self.expect_op(")")
                return ex.ScalarSelect(select)
            inner = self.expr()
            self.expect_op(")")
            return inner
        if token.kind != IDENT:
            self.error("expected expression")
        word = token.value.upper()
        if word == "NULL":
            self.advance()
            return ex.Literal(None)
        if word == "TRUE":
            self.advance()
            return ex.Literal(True)
        if word == "FALSE":
            self.advance()
            return ex.Literal(False)
        if word == "CASE":
            return self._case()
        if word == "EXISTS":
            self.advance()
            self.expect_op("(")
            select = self._select()
            self.expect_op(")")
            return ex.Exists(select)
        if word == "NOT":
            self.advance()
            return ex.Not(self._primary())
        # function call?
        if self.peek(1).kind == OP and self.peek(1).value == "(":
            name = self.expect_ident()
            self.expect_op("(")
            upper = name.upper()
            if upper in self._AGG_FUNCS:
                distinct = self.accept_keyword("DISTINCT")
                if self.accept_op("*"):
                    self.expect_op(")")
                    return ex.Aggregate(upper, None, distinct)
                arg = self.expr()
                self.expect_op(")")
                return ex.Aggregate(upper, arg, distinct)
            args: List[ex.Expr] = []
            if not self.accept_op(")"):
                args.append(self.expr())
                while self.accept_op(","):
                    args.append(self.expr())
                self.expect_op(")")
            return ex.FuncCall(name, args)
        # column reference (possibly qualified)
        name = self.expect_ident()
        if self.accept_op("."):
            column = self.expect_ident()
            return ex.ColumnRef(column, table=name)
        return ex.ColumnRef(name)

    def _case(self) -> ex.Expr:
        self.expect_keyword("CASE")
        whens: List[Tuple[ex.Expr, ex.Expr]] = []
        while self.accept_keyword("WHEN"):
            condition = self.expr()
            self.expect_keyword("THEN")
            value = self.expr()
            whens.append((condition, value))
        default = None
        if self.accept_keyword("ELSE"):
            default = self.expr()
        self.expect_keyword("END")
        if not whens:
            self.error("CASE requires at least one WHEN")
        return ex.Case(whens, default)


def parse_statement(sql: str) -> ast.Statement:
    """Parse a single SQL statement."""
    return Parser(sql).parse_statement()


def parse_script(sql: str) -> List[ast.Statement]:
    """Parse a semicolon-separated sequence of statements."""
    return Parser(sql).parse_script()


def parse_expression(sql: str) -> ex.Expr:
    """Parse a standalone expression (used for CHECK constraints etc.)."""
    parser = Parser(sql)
    expr = parser.expr()
    if parser.peek().kind != EOF:
        parser.error("unexpected trailing input after expression")
    return expr
