"""SQL lexer.

Produces a flat token list for the recursive-descent parser.  Keywords
— including statement heads like ``ANALYZE`` and ``EXPLAIN`` (and the
``EXPLAIN ANALYZE`` pair, disambiguated by parser lookahead) — are
plain identifier tokens matched case-insensitively at parse time;
identifier case is preserved (the applications in :mod:`repro.apps`
use CamelCase table names like the paper's ``HIVPatients``).
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from ..errors import SQLSyntaxError

IDENT = "ident"
NUMBER = "number"
STRING = "string"
PARAM = "param"
OP = "op"
EOF = "eof"

_PUNCTUATION = (
    "<>", "<=", ">=", "!=", "||",
    "(", ")", ",", ".", ";", "*", "+", "-", "/", "%", "=", "<", ">", "?",
)


class Token(NamedTuple):
    kind: str
    value: object
    position: int

    def matches_keyword(self, word: str) -> bool:
        return (self.kind == IDENT and isinstance(self.value, str)
                and self.value.upper() == word)


def tokenize(sql: str) -> List[Token]:
    tokens: List[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        # -- comments ----------------------------------------------------
        if ch == "-" and sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "/" and sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end < 0:
                raise SQLSyntaxError("unterminated comment at %d" % i)
            i = end + 2
            continue
        # -- strings -----------------------------------------------------
        if ch == "'":
            j = i + 1
            parts = []
            while True:
                if j >= n:
                    raise SQLSyntaxError("unterminated string at %d" % i)
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":   # escaped quote
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            tokens.append(Token(STRING, "".join(parts), i))
            i = j + 1
            continue
        # -- quoted identifiers -------------------------------------------
        if ch == '"':
            j = sql.find('"', i + 1)
            if j < 0:
                raise SQLSyntaxError("unterminated identifier at %d" % i)
            tokens.append(Token(IDENT, sql[i + 1:j], i))
            i = j + 1
            continue
        # -- numbers -------------------------------------------------------
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            saw_dot = False
            saw_exp = False
            while j < n:
                c = sql[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not saw_dot and not saw_exp:
                    saw_dot = True
                    j += 1
                elif c in "eE" and not saw_exp and j > i:
                    saw_exp = True
                    j += 1
                    if j < n and sql[j] in "+-":
                        j += 1
                else:
                    break
            text = sql[i:j]
            value = float(text) if (saw_dot or saw_exp) else int(text)
            tokens.append(Token(NUMBER, value, i))
            i = j
            continue
        # -- identifiers and keywords ---------------------------------------
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            tokens.append(Token(IDENT, sql[i:j], i))
            i = j
            continue
        # -- parameters --------------------------------------------------
        if ch == "?":
            tokens.append(Token(PARAM, None, i))
            i += 1
            continue
        # -- punctuation ----------------------------------------------------
        for punct in _PUNCTUATION:
            if sql.startswith(punct, i):
                tokens.append(Token(OP, punct, i))
                i += len(punct)
                break
        else:
            raise SQLSyntaxError("unexpected character %r at %d" % (ch, i))
    tokens.append(Token(EOF, None, n))
    return tokens
