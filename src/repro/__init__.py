"""IFDB: decentralized information flow control for databases.

A full-stack Python reproduction of Schultz & Liskov (EuroSys 2013):
the DIFC model (:mod:`repro.core`), a relational engine with Query by
Label enforcement (:mod:`repro.db`), a SQL dialect with the IFDB
extensions (:mod:`repro.sql`), an IFC-aware application platform
(:mod:`repro.platform`), the CarTel and HotCRP case-study applications
(:mod:`repro.apps`), and the paper's benchmark workloads
(:mod:`repro.workloads`).

Quickstart::

    from repro import AuthorityState, Database, IFCProcess

    authority = AuthorityState()
    alice = authority.create_principal("alice")
    tag = authority.create_tag("alice_medical", owner=alice.id)

    db = Database(authority)
    process = IFCProcess(authority, alice.id)
    session = db.connect(process)
    session.execute("CREATE TABLE Patients (name TEXT PRIMARY KEY)")

    process.add_secrecy(tag.id)          # raise the label, then write
    session.execute("INSERT INTO Patients VALUES ('Alice')")
    process.declassify(tag.id)           # needs authority for the tag
"""

from .core import (
    EMPTY_LABEL,
    AuthorityState,
    Closure,
    IFCProcess,
    Label,
    SeededIdGenerator,
)
from .db import Database, Session, TableSchema
from .errors import (
    AuthorityError,
    CheckViolation,
    ClearanceError,
    DatabaseError,
    ForeignKeyViolation,
    IFCError,
    IFCViolation,
    IntegrityError,
    LabelConstraintViolation,
    ReleaseError,
    ReproError,
    SerializationError,
    SQLSyntaxError,
    TransactionError,
    UniqueViolation,
)

__version__ = "1.0.0"

__all__ = [
    "AuthorityError",
    "AuthorityState",
    "CheckViolation",
    "ClearanceError",
    "Closure",
    "Database",
    "DatabaseError",
    "EMPTY_LABEL",
    "ForeignKeyViolation",
    "IFCError",
    "IFCProcess",
    "IFCViolation",
    "IntegrityError",
    "Label",
    "LabelConstraintViolation",
    "ReleaseError",
    "ReproError",
    "SQLSyntaxError",
    "SeededIdGenerator",
    "SerializationError",
    "Session",
    "TableSchema",
    "TransactionError",
    "UniqueViolation",
    "__version__",
]
