"""Exception hierarchy for the IFDB reproduction.

Every error raised by the public API derives from :class:`ReproError`, so
applications can catch a single base class.  Information-flow failures are
separated from ordinary database errors because the two are handled very
differently: an :class:`IFCViolation` generally means untrusted code tried
to do something the security policy forbids, and the paper's model requires
that such failures not leak information beyond their occurrence.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


# ---------------------------------------------------------------------------
# Information flow control errors (repro.core)
# ---------------------------------------------------------------------------

class IFCError(ReproError):
    """Base class for information-flow-control errors."""


class IFCViolation(IFCError):
    """An operation would violate the information flow rules.

    Raised for attempts to release contaminated data, write below the
    process label, or commit a transaction whose commit label exceeds the
    label of a tuple in its write set.
    """


class AuthorityError(IFCError):
    """The acting principal lacks authority for the requested operation."""


class ClearanceError(IFCError):
    """The transaction clearance rule forbids raising the label.

    Only enforced for serializable transactions (section 5.1 of the
    paper); snapshot-isolation transactions are exempt.
    """


class UnknownTagError(IFCError):
    """A tag id or name does not exist in the authority state."""


class UnknownPrincipalError(IFCError):
    """A principal id or name does not exist in the authority state."""


# ---------------------------------------------------------------------------
# Database errors (repro.db, repro.sql)
# ---------------------------------------------------------------------------

class DatabaseError(ReproError):
    """Base class for database errors."""


class CatalogError(DatabaseError):
    """Schema object missing, duplicated, or malformed."""


class SQLSyntaxError(DatabaseError):
    """The SQL text could not be lexed or parsed."""


class TypeError_(DatabaseError):
    """A value could not be coerced to the declared column type."""


class IntegrityError(DatabaseError):
    """Base class for constraint violations."""


class UniqueViolation(IntegrityError):
    """A uniqueness constraint was violated by a *visible* tuple.

    Conflicts with tuples the inserting process cannot see never raise;
    they polyinstantiate instead (section 5.2.1).
    """


class ForeignKeyViolation(IntegrityError):
    """Referential integrity failure (missing parent or restricted delete)."""


class CheckViolation(IntegrityError):
    """A CHECK constraint evaluated to false."""


class LabelConstraintViolation(IntegrityError):
    """A label constraint (section 5.2.4) rejected the tuple's label."""


class TransactionError(DatabaseError):
    """Transaction state machine misuse (commit without begin, etc.)."""


class SerializationError(TransactionError):
    """Write-write conflict under snapshot isolation (first committer wins)."""


# ---------------------------------------------------------------------------
# Platform errors (repro.platform)
# ---------------------------------------------------------------------------

class PlatformError(ReproError):
    """Base class for application-platform errors."""


class ReleaseError(PlatformError, IFCViolation):
    """A contaminated process attempted to release data to the outside."""


class AuthenticationError(PlatformError):
    """Login failed or a request lacked a valid session."""
