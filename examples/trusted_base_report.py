#!/usr/bin/env python3
"""Trusted-base audit (section 6.3's accounting, applied to this repo).

The paper reports that in IFDB-CarTel only 380 of 10,000 lines (and in
IFDB-HotCRP 760 of 29,000) run with authority — declassifying views and
authority closures — plus ~50 trusted lines that create tags and label
incoming data.  Everything else computes on secrets *without* the
ability to release them.

This script performs the same audit on the applications in this
repository: it counts the lines of each app module and classifies the
functions that hold authority (closures, trusted bootstrap) versus
untrusted handler/query code.

Run:  python examples/trusted_base_report.py
"""

import inspect
import os

from repro.apps import cartel, hotcrp
from repro.apps.cartel import ingest, portal, schema as cartel_schema
from repro.apps.hotcrp import app as hotcrp_app


def count_lines(module) -> int:
    path = inspect.getsourcefile(module)
    with open(path) as handle:
        return sum(1 for line in handle
                   if line.strip() and not line.strip().startswith("#"))


def fn_lines(fn) -> int:
    source, _ = inspect.getsourcelines(fn)
    return len([l for l in source if l.strip()])


def main() -> None:
    print("=== Trusted-base audit (methodology of section 6.3) ===\n")

    # -- CarTel ---------------------------------------------------------
    total = sum(count_lines(m) for m in
                (cartel_schema, ingest, portal, cartel.data))
    trusted_fns = [
        ("tag setup / signup (schema.CarTelApp.signup)",
         fn_lines(cartel_schema.CarTelApp.signup)),
        ("car labelling (schema.CarTelApp.add_car)",
         fn_lines(cartel_schema.CarTelApp.add_car)),
        ("friend delegation (schema.CarTelApp.befriend)",
         fn_lines(cartel_schema.CarTelApp.befriend)),
        ("ingest labelling (ingest.SensorProcessor.process_measurements)",
         fn_lines(ingest.SensorProcessor.process_measurements)),
        ("driveupdate closure (ingest.install_driveupdate_trigger)",
         fn_lines(ingest.install_driveupdate_trigger)),
        ("traffic_stats closure (portal._install_traffic_stats)",
         fn_lines(portal._install_traffic_stats)),
    ]
    trusted = sum(n for _name, n in trusted_fns)
    print("CarTel: %d non-blank lines total" % total)
    for name, n in trusted_fns:
        print("  trusted: %-62s %4d" % (name, n))
    print("  => trusted base: %d lines (%.1f%%); paper: 380/10,000 (3.8%%)"
          % (trusted, 100.0 * trusted / total))
    print("  untrusted: all seven portal handlers — they read secrets "
          "but cannot release them.\n")

    # -- HotCRP ---------------------------------------------------------
    total = count_lines(hotcrp_app) + count_lines(hotcrp.schema)
    trusted_fns = [
        ("registration / tag setup (HotCRPApp.register)",
         fn_lines(hotcrp_app.HotCRPApp.register)),
        ("review tag creation (HotCRPApp.add_review)",
         fn_lines(hotcrp_app.HotCRPApp.add_review)),
        ("decision tags (HotCRPApp.record_decision)",
         fn_lines(hotcrp_app.HotCRPApp.record_decision)),
        ("release delegation (HotCRPApp.release_decision)",
         fn_lines(hotcrp_app.HotCRPApp.release_decision)),
        ("chair delegation closure (HotCRPApp._delegate_reviews)",
         fn_lines(hotcrp_app.HotCRPApp._delegate_reviews)),
        ("PCMembers declassifying view (schema.PC_MEMBERS_VIEW)", 4),
    ]
    trusted = sum(n for _name, n in trusted_fns)
    print("HotCRP: %d non-blank lines total" % total)
    for name, n in trusted_fns:
        print("  trusted: %-62s %4d" % (name, n))
    print("  => trusted base: %d lines (%.1f%%); paper: 760/29,000 (2.6%%)"
          % (trusted, 100.0 * trusted / total))
    print("  untrusted: papers_by_status, search_decided, my_reviews, "
          "pc_members — plain queries, protected by labels.")


if __name__ == "__main__":
    main()
