#!/usr/bin/env python3
"""CarTel end-to-end demo (section 6.1): GPS ingest through closure
triggers, the friend policy, and the attacks IFDB neutralizes.

Run:  python examples/cartel_demo.py
"""

from repro.core import AuthorityState, SeededIdGenerator
from repro.db import Database
from repro.platform import IFRuntime, Request
from repro.apps.cartel import (
    CarTelApp,
    SensorProcessor,
    TraceGenerator,
    build_portal,
    install_driveupdate_trigger,
)


def main() -> None:
    authority = AuthorityState(idgen=SeededIdGenerator(2013))
    db = Database(authority, seed=2013)
    runtime = IFRuntime(authority)
    app = CarTelApp(db, runtime)
    install_driveupdate_trigger(app)
    web = build_portal(app)

    # Accounts, cars, and one friendship: Alice shares drives with Bob.
    alice = app.signup("alice", "alice-pw")
    bob = app.signup("bob", "bob-pw")
    car_a = app.add_car(alice, "Saab", "93")
    car_b = app.add_car(bob, "Volvo", "240")
    app.befriend(alice, bob)

    # Replay GPS measurements (200 inserts/transaction, triggers derive
    # Drives and LocationsLatest under the right labels).
    generator = TraceGenerator([car_a, car_b], seed=99)
    processor = SensorProcessor(app)
    count = processor.process_measurements(generator.measurements(400))
    print("ingested %d measurements; ingest process label afterwards: %r"
          % (count, processor.process.label))

    token_alice = web.login("alice", "alice-pw")
    token_bob = web.login("bob", "bob-pw")

    response = web.handle(Request("/get_cars.php",
                                  session_token=token_alice))
    print("alice /get_cars.php ->", response.status,
          "%d car(s)" % len(response.body["cars"]))

    response = web.handle(Request("/drives.php", session_token=token_bob))
    users = sorted({d["user"] for d in response.body["drives"]})
    print("bob /drives.php -> sees drives of users", users,
          "(his own + alice's, who befriended him)")

    # Attack 1 (section 6.1): alice coerces the URL to view bob's drives
    # — bob never delegated to her.  The script contaminates itself with
    # a tag it can't declassify and produces NO output.
    response = web.handle(Request("/drives.php", params={"user": "bob"},
                                  session_token=token_alice))
    print("alice /drives.php?user=bob ->", response.status,
          "body:", response.body)

    # Attack 2: an unauthenticated script runs with no authority at all.
    response = web.handle(Request("/get_cars.php"))
    print("unauthenticated /get_cars.php ->", response.status)

    # Aggregation via a stored authority closure: per-user data stays
    # protected, only the summary is declassified.
    response = web.handle(Request("/drives_top.php",
                                  session_token=token_bob))
    print("bob /drives_top.php ->", response.body["stats"])

    print("releases blocked by the platform so far:", web.releases_blocked)
    print("engine stats:", {k: v for k, v in db.stats().items()
                            if k in ("statements", "rows_inserted",
                                     "commits")})


if __name__ == "__main__":
    main()
