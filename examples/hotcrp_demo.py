#!/usr/bin/env python3
"""HotCRP demo (section 6.2): the PCMembers declassifying view, per-paper
decision tags, review delegation with conflicts, and the two
leak-regression attacks the paper reintroduced and found blocked.

Run:  python examples/hotcrp_demo.py
"""

from repro.core import AuthorityState, SeededIdGenerator
from repro.db import Database
from repro.platform import IFRuntime
from repro.apps.hotcrp import HotCRPApp


def main() -> None:
    authority = AuthorityState(idgen=SeededIdGenerator(415))
    db = Database(authority, seed=415)
    runtime = IFRuntime(authority)
    app = HotCRPApp(db, runtime)

    app.register("chair@conf.org", "pw", first="Carol", last="Chair",
                 is_pc=True, is_chair=True)
    app.register("pc@conf.org", "pw", first="Pat", last="Member",
                 is_pc=True)
    app.register("author@uni.edu", "pw", first="Alice", last="Author")

    p1 = app.submit_paper("author@uni.edu", "DIFC for Databases")
    p2 = app.submit_paper("pc@conf.org", "A Conflicted Submission")
    app.add_review("pc@conf.org", p1, 5, "Strong accept.")
    app.add_review("chair@conf.org", p2, 2, "Weak reject.")

    # The declassifying view: contact info is sensitive, PC names public.
    print("author sees PC members:", app.pc_members("author@uni.edu"))
    # The bug the paper found: raw ContactInfo is NOT readable.
    _proc, session = app.session_for("author@uni.edu")
    print("author reads raw ContactInfo:",
          session.query("SELECT phone FROM ContactInfo"))

    # Decisions under per-paper tags.
    app.record_decision(p1, "accept")
    app.record_decision(p2, "reject")

    # Regression 1: sort-by-status.  Outer join + Query by Label gives
    # NULLs for invisible decisions — ordering reveals nothing.
    print("author sorts papers by status (pre-release):",
          app.papers_by_status("author@uni.edu"))
    # Regression 2: the search feature.
    print("author searches accepted papers (pre-release):",
          app.search_decided("author@uni.edu", "accept"))

    app.release_decision(p1)
    print("after release:",
          app.papers_by_status("author@uni.edu"))

    # Review visibility: author never, reviewer + chair always, PC
    # members only after the chair's closure delegates, and never on
    # conflicted papers.
    print("author reviews of p1:", app.my_reviews("author@uni.edu", p1))
    print("chair reviews of p1: ", app.my_reviews("chair@conf.org", p1))
    delegations = app.delegate_reviews_to_pc()
    print("chair closure delegated %d review grants" % delegations)
    print("pc reviews of p1 (no conflict):",
          app.my_reviews("pc@conf.org", p1))
    print("pc reviews of p2 (conflicted): ",
          app.my_reviews("pc@conf.org", p2))


if __name__ == "__main__":
    main()
