#!/usr/bin/env python3
"""Quickstart: tags, labels, Query by Label, and declassification.

Run:  python examples/quickstart.py
"""

from repro import AuthorityState, Database, IFCProcess
from repro.errors import AuthorityError, IFCViolation


def main() -> None:
    # 1. The authority state: principals own tags; tags protect data.
    authority = AuthorityState()
    alice = authority.create_principal("alice")
    bob = authority.create_principal("bob")
    alice_tag = authority.create_tag("alice-secrets", owner=alice.id)

    # 2. A database and a session bound to Alice's IFC process.
    db = Database(authority)
    process = IFCProcess(authority, alice.id)
    session = db.connect(process)
    session.execute("CREATE TABLE Notes (id INT PRIMARY KEY, body TEXT)")

    # 3. Raise the label, write sensitive data.  Inserted tuples carry
    #    exactly the process label (the Write Rule).
    process.add_secrecy(alice_tag.id)
    session.execute("INSERT INTO Notes VALUES (1, 'my diary entry')")
    print("Alice (contaminated) sees:",
          [list(r) for r in session.query("SELECT * FROM Notes")])

    # 4. Another process with an empty label sees nothing — Query by
    #    Label filters, it never errors or reveals.
    bob_session = db.connect(IFCProcess(authority, bob.id))
    print("Bob (empty label) sees:   ",
          bob_session.query("SELECT * FROM Notes"))

    # 5. Bob can contaminate himself and read, but then he is stuck: he
    #    has no authority to declassify, so he can't release anything.
    bob_process = IFCProcess(authority, bob.id)
    bob_session = db.connect(bob_process)
    bob_process.add_secrecy(alice_tag.id)
    rows = bob_session.query("SELECT body FROM Notes")
    print("Bob (contaminated) reads: ", [r[0] for r in rows])
    print("Bob may release to the outside world?",
          bob_process.can_release())
    try:
        bob_process.declassify(alice_tag.id)
    except AuthorityError as error:
        print("Bob declassify ->", error)

    # 6. Alice delegates; now Bob can declassify and release.
    alice_clean = IFCProcess(authority, alice.id)
    alice_clean.delegate(alice_tag.id, bob.id)
    bob_process.declassify(alice_tag.id)
    print("After delegation, Bob may release?", bob_process.can_release())

    # 7. The covert-channel transaction of section 5.1 is blocked by the
    #    transaction commit label.
    sneaky = IFCProcess(authority, bob.id)
    sneaky_session = db.connect(sneaky)
    sneaky_session.execute("BEGIN")
    sneaky_session.execute("INSERT INTO Notes VALUES (2, 'public marker')")
    sneaky.add_secrecy(alice_tag.id)           # read something secret...
    sneaky_session.query("SELECT * FROM Notes")
    try:
        sneaky_session.commit()                 # ...then try to commit low
    except IFCViolation as error:
        print("Commit-label rule ->", type(error).__name__, "(blocked)")


if __name__ == "__main__":
    main()
