#!/usr/bin/env python3
"""The paper's medical-records walkthrough (Figure 2, sections 4.2 and
5.2): per-patient tags, polyinstantiation, label constraints, and the
foreign-key probing channel.

Run:  python examples/medical_records.py
"""

from repro import AuthorityState, Database, IFCProcess
from repro.errors import (
    ForeignKeyViolation,
    IFCViolation,
    UniqueViolation,
)


def main() -> None:
    authority = AuthorityState()
    clinic = authority.create_principal("clinic")
    all_medical = authority.create_compound_tag("all_medical",
                                                owner=clinic.id)

    db = Database(authority)
    admin = db.connect(IFCProcess(authority, clinic.id))
    admin.execute(
        "CREATE TABLE HIVPatients (patient_name TEXT, patient_dob TEXT, "
        "notes TEXT, PRIMARY KEY (patient_name, patient_dob))")
    admin.execute(
        "CREATE TABLE HIVRecords (recid INT PRIMARY KEY, "
        "patient_name TEXT, patient_dob TEXT, "
        "FOREIGN KEY (patient_name, patient_dob) "
        "REFERENCES HIVPatients(patient_name, patient_dob))")

    # Per-patient tags, owned by each patient (Figure 2's labels).
    patients = {}
    for name, dob in (("Alice", "2/1/60"), ("Bob", "6/26/78"),
                      ("Cathy", "4/22/71")):
        principal = authority.create_principal(name.lower())
        tag = authority.create_tag("%s_medical" % name.lower(),
                                   owner=principal.id,
                                   compounds=(all_medical.id,),
                                   creator=clinic.id)
        process = IFCProcess(authority, principal.id)
        session = db.connect(process)
        process.add_secrecy(tag.id)
        session.execute("INSERT INTO HIVPatients VALUES (?, ?, 'hiv')",
                        (name, dob))
        patients[name] = (principal, tag)

    # --- Query by Label (section 4.2) --------------------------------
    bob_principal, bob_tag = patients["Bob"]
    bob = IFCProcess(authority, bob_principal.id)
    bob_session = db.connect(bob)
    bob.add_secrecy(bob_tag.id)
    print("Bob's query with {bob_medical}:",
          [list(r)[:2] for r in bob_session.query(
              "SELECT * FROM HIVPatients WHERE patient_name = 'Bob'")])

    empty = db.connect(IFCProcess(authority, clinic.id))
    print("Same query, empty label:   ",
          empty.query("SELECT * FROM HIVPatients "
                      "WHERE patient_name = 'Bob'"))

    # --- The three inserts of section 5.2.1 -----------------------------
    dan = authority.create_principal("dan")
    dan_tag = authority.create_tag("dan_medical", owner=dan.id)
    dan_process = IFCProcess(authority, dan.id)
    dan_session = db.connect(dan_process)
    dan_process.add_secrecy(dan_tag.id)
    dan_session.execute(
        "INSERT INTO HIVPatients VALUES ('Dan', '8/12/69', 'hiv')")
    print("Insert 1 (new key, any label): ok")

    alice_principal, alice_tag = patients["Alice"]
    alice = IFCProcess(authority, alice_principal.id)
    alice_session = db.connect(alice)
    alice.add_secrecy(alice_tag.id)
    try:
        alice_session.execute(
            "INSERT INTO HIVPatients VALUES ('Alice', '2/1/60', 'dup')")
    except UniqueViolation:
        print("Insert 2 (visible conflict): UniqueViolation, reveals "
              "nothing new")

    # Insert 3: the problematic one — conflicting tuple is INVISIBLE.
    empty.execute(
        "INSERT INTO HIVPatients VALUES ('Alice', '2/1/60', 'routine')")
    print("Insert 3 (invisible conflict): accepted -> polyinstantiation")
    print("  low-label view of Alice: ",
          [r[2] for r in empty.query(
              "SELECT * FROM HIVPatients WHERE patient_name='Alice'")])
    print("  high-label view of Alice:",
          [r[2] for r in alice_session.query(
              "SELECT * FROM HIVPatients WHERE patient_name='Alice'")])
    print("  exact-label filter:      ",
          [r[2] for r in alice_session.query(
              "SELECT * FROM HIVPatients WHERE patient_name='Alice' AND "
              "LABEL_CONTAINS(_label, 'alice_medical')")])

    # --- The foreign-key probing channel (section 5.2.2) -----------------
    probe = db.connect(IFCProcess(authority, clinic.id))
    try:
        probe.execute("INSERT INTO HIVRecords VALUES (1, 'Bob', '6/26/78')")
    except (IFCViolation, ForeignKeyViolation) as error:
        print("FK probe with empty label ->", type(error).__name__,
              "(membership not disclosed)")
    # The clinic holds the compound; it may vouch explicitly:
    probe.execute(
        "INSERT INTO HIVRecords VALUES (1, 'Bob', '6/26/78') "
        "DECLASSIFYING (bob_medical)")
    print("FK insert with DECLASSIFYING(bob_medical) by the clinic: ok")


if __name__ == "__main__":
    main()
